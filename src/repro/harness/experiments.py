"""Experiment definitions: one function per paper table/figure.

Every function returns plain data structures (lists of dicts) that the
benchmark harnesses print with :mod:`repro.harness.reporting`, and that
tests assert shape properties on.  See DESIGN.md section 4 for the
experiment index and the expected shapes.

All experiments route through the same plan → execute → assemble
pipeline (:mod:`repro.harness.executor`): cells are planned up front,
deduplicated (schemes of one benchmark share their compute-time run),
optionally served from the on-disk :class:`~repro.harness.cache.
ResultCache`, and executed serially or across ``jobs`` worker processes
with identical row output either way.  A failed cell yields an error row
(benchmark, scheme, error text) instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..config import MachineConfig, bench_config
from ..workloads import get_workload, workload_class
from .cache import ResultCache
from .executor import (
    Progress,
    ScheduledRun,
    SweepExecutor,
    SweepPlan,
    SweepResults,
    error_row,
)
from .runner import SCHEMES

#: The paper's benchmark suite (the `spmv` extension workload is opt-in).
OLDEN = ("bh", "bisort", "em3d", "health", "mst", "perimeter", "power",
         "treeadd", "tsp", "voronoi")

#: Benchmarks with an appreciable memory-latency component — the set over
#: which the paper computes its headline averages ("If we disregard bh,
#: bisort, power, tsp and voronoi...", Section 4.2).
MEMORY_BOUND = ("em3d", "health", "mst", "perimeter", "treeadd")

#: Figure 4's idiom-comparison subjects: the benchmarks with more than one
#: applicable idiom.
FIGURE4_SUBJECTS = {
    "health": ("queue", "full", "chain", "root"),
    "mst": ("queue", "root"),
    "em3d": ("queue",),
}


def small_params(name: str) -> dict[str, Any]:
    """Reduced sizes for quick runs/tests (not the bench defaults)."""
    return workload_class(name).test_params()


def _resolve(
    results: SweepResults, sr: ScheduledRun
) -> tuple[Any, str | None]:
    """(SchemeRun, None) on success, (None, traceback) on failure."""
    err = results.error(sr)
    if err is not None:
        return None, err
    return results.scheme_run(sr), None


# ----------------------------------------------------------------------
# Table 1 — benchmark characterization
# ----------------------------------------------------------------------

def table1(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    cells = [
        (name, plan.add_table1(name, (params or {}).get(name)))
        for name in benchmarks or OLDEN
    ]
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)
    rows = []
    for name, spec in cells:
        cell = results.cell(spec)
        if cell.ok:
            rows.append(cell.result)
        else:
            rows.append(error_row(name, "characterize", cell.error))
    return rows


# ----------------------------------------------------------------------
# Figure 4 — comparing idioms (software and cooperative)
# ----------------------------------------------------------------------

def figure4(
    cfg: MachineConfig | None = None,
    subjects: dict[str, tuple[str, ...]] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for name, idioms in (subjects or FIGURE4_SUBJECTS).items():
        p = (params or {}).get(name)
        workload = get_workload(name, **(p or {}))
        base = plan.add_run(name, "base", p)
        variant_runs = []
        for impl, engine in (("sw", "software"), ("coop", "cooperative")):
            for idiom in idioms:
                variant = f"{impl}:{idiom}"
                if variant not in workload.variants:
                    continue
                variant_runs.append(plan.add_variant_run(name, variant, engine, p))
        scheduled.append((name, base, variant_runs))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, base_sr, variant_runs in scheduled:
        base, base_err = _resolve(results, base_sr)
        if base_err is not None:
            rows.append(error_row(name, "base", base_err, label_key="config"))
        else:
            rows.append({
                "benchmark": name, "config": "base", "normalized": 1.0,
                "compute": base.compute, "memory": base.memory,
            })
        for vsr in variant_runs:
            run, err = _resolve(results, vsr)
            if err is not None or base is None:
                rows.append(error_row(
                    name, vsr.variant, err or "baseline run failed",
                    label_key="config",
                ))
                continue
            rows.append({
                "benchmark": name,
                "config": vsr.variant,
                "normalized": round(run.normalized(base.total), 3),
                "compute": run.compute,
                "memory": run.memory,
            })
    return rows


# ----------------------------------------------------------------------
# Figure 5 — comparing implementations (+ DBP)
# ----------------------------------------------------------------------

def figure5(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks or OLDEN:
        p = (params or {}).get(name)
        per_scheme = {s: plan.add_run(name, s, p) for s in schemes}
        # Normalization needs the baseline even when it is not displayed;
        # deduplication makes this free when "base" is already in schemes.
        base_sr = per_scheme.get("base") or plan.add_run(name, "base", p)
        scheduled.append((name, per_scheme, base_sr))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, per_scheme, base_sr in scheduled:
        base, base_err = _resolve(results, base_sr)
        for scheme in schemes:
            run, err = _resolve(results, per_scheme[scheme])
            if err is not None or base is None:
                rows.append(error_row(name, scheme, err or base_err or ""))
                continue
            rows.append({
                "benchmark": name,
                "scheme": scheme,
                "variant": run.variant,
                "normalized": round(run.normalized(base.total), 3),
                "compute": run.compute,
                "memory": run.memory,
                "mem_reduction%": round(100 * run.memory_reduction(base.memory), 1),
            })
    return rows


def figure5_summary(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    """The paper's headline averages over the memory-bound benchmarks."""
    out = []
    for scheme in ("software", "cooperative", "hardware", "dbp"):
        # Degenerate tiny runs can round "normalized" to 0.0 (and error
        # rows carry no metrics at all); both are skipped, not divided by.
        picked = [
            r for r in rows
            if r["scheme"] == scheme and r["benchmark"] in MEMORY_BOUND
            and r.get("normalized")
        ]
        if not picked:
            continue
        speedup = sum(1 / r["normalized"] for r in picked) / len(picked)
        memcut = sum(r["mem_reduction%"] for r in picked) / len(picked)
        out.append({
            "scheme": scheme,
            "avg speedup%": round(100 * (speedup - 1), 1),
            "avg mem stall cut%": round(memcut, 1),
        })
    return out


# ----------------------------------------------------------------------
# Figure 6 — bandwidth (bytes L1<->L2 per baseline dynamic instruction)
# ----------------------------------------------------------------------

def figure6(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] | None = None,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks or OLDEN:
        p = (params or {}).get(name)
        scheduled.append((name, {s: plan.add_run(name, s, p) for s in SCHEMES}))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, per_scheme in scheduled:
        base, base_err = _resolve(results, per_scheme["base"])
        # Normalize by the *original* (baseline) program's instruction
        # count so added prefetch instructions do not bias the metric.
        base_insts = base.result.instructions if base else 0
        for scheme in SCHEMES:
            run, err = _resolve(results, per_scheme[scheme])
            if err is not None or not base_insts:
                rows.append(error_row(name, scheme, err or base_err or ""))
                continue
            rows.append({
                "benchmark": name,
                "scheme": scheme,
                "bytes/inst": round(
                    run.result.hierarchy.bytes_l1_l2 / base_insts, 3
                ),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 7 — tolerating longer latencies (health)
# ----------------------------------------------------------------------

def figure7(
    cfg: MachineConfig | None = None,
    latencies: tuple[int, ...] = (70, 280),
    intervals: tuple[int, ...] = (8, 16),
    params: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for latency in latencies:
        for interval in intervals:
            mcfg = replace(
                cfg.with_memory_latency(latency),
                prefetch=replace(cfg.prefetch, jump_interval=interval),
            )
            wparams = dict(params or {})
            wparams["interval"] = interval
            per_scheme = {
                s: plan.add_run("health", s, wparams, cfg=mcfg)
                for s in SCHEMES
            }
            scheduled.append((latency, interval, per_scheme))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for latency, interval, per_scheme in scheduled:
        base, base_err = _resolve(results, per_scheme["base"])
        for scheme in SCHEMES:
            run, err = _resolve(results, per_scheme[scheme])
            if err is not None or base is None:
                row = error_row("health", scheme, err or base_err or "")
                row.update(latency=latency, interval=interval)
                rows.append(row)
                continue
            rows.append({
                "latency": latency,
                "interval": interval,
                "scheme": scheme,
                "total": run.total,
                "normalized": round(run.normalized(base.total), 3),
                "mem_reduction%": round(
                    100 * run.memory_reduction(base.memory), 1
                ),
            })
    return rows


# ----------------------------------------------------------------------
# X1 — on-chip jump-pointer table ablation (Section 3.3)
# ----------------------------------------------------------------------

def onchip_table_ablation(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("em3d", "health", "treeadd"),
    table_entries: int = 16384,
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    cfg = cfg or bench_config()
    onchip_cfg = replace(
        cfg, prefetch=replace(cfg.prefetch, onchip_table_entries=table_entries)
    )
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks:
        p = (params or {}).get(name)
        scheduled.append((
            name,
            plan.add_run(name, "base", p),
            plan.add_run(name, "hardware", p),
            plan.add_run(name, "hardware", p, cfg=onchip_cfg),
        ))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, base_sr, padding_sr, onchip_sr in scheduled:
        base, e1 = _resolve(results, base_sr)
        padding, e2 = _resolve(results, padding_sr)
        onchip, e3 = _resolve(results, onchip_sr)
        err = e1 or e2 or e3
        if err is not None:
            rows.append(error_row(name, "hardware", err))
            continue
        rows.append({
            "benchmark": name,
            "base": base.total,
            "hw (padding)": round(padding.normalized(base.total), 3),
            f"hw (on-chip {table_entries})": round(onchip.normalized(base.total), 3),
        })
    return rows


# ----------------------------------------------------------------------
# X2 — creation overhead and traversal-count sensitivity (Section 4.2)
# ----------------------------------------------------------------------

def creation_overhead(
    cfg: MachineConfig | None = None,
    benchmarks: tuple[str, ...] = ("health", "treeadd"),
    params: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    """A-priori slowdown of jump-pointer creation: the compute-time ratio
    of the instrumented program to the baseline (paper: ~12% for health)."""
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for name in benchmarks:
        p = (params or {}).get(name)
        scheduled.append((
            name, plan.add_run(name, "base", p), plan.add_run(name, "software", p)
        ))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for name, base_sr, sw_sr in scheduled:
        base, e1 = _resolve(results, base_sr)
        sw, e2 = _resolve(results, sw_sr)
        err = e1 or e2
        if err is not None:
            rows.append(error_row(name, "software", err))
            continue
        rows.append({
            "benchmark": name,
            "variant": sw.variant,
            "creation overhead%": round(100 * (sw.compute / base.compute - 1), 1),
        })
    return rows


def traversal_count_sweep(
    cfg: MachineConfig | None = None,
    passes: tuple[int, ...] = (1, 2, 4, 8),
    params: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Progress | None = None,
    executor: SweepExecutor | None = None,
) -> list[dict[str, object]]:
    """Hardware vs cooperative JPP (and DBP) on treeadd as the number of
    traversals grows: hardware's *jump-pointer* half forfeits the first
    pass, so at one pass it adds nothing over its DBP half and its
    advantage appears only with repetition (Section 4.2)."""
    cfg = cfg or bench_config()
    plan = SweepPlan(cfg)
    scheduled = []
    for p in passes:
        wparams = dict(params or {})
        wparams["passes"] = p
        scheduled.append((p, {
            s: plan.add_run("treeadd", s, wparams)
            for s in ("base", "hardware", "cooperative", "dbp")
        }))
    results = plan.execute(jobs=jobs, cache=cache, progress=progress,
                           executor=executor)

    rows = []
    for p, per_scheme in scheduled:
        runs = {}
        err = None
        for scheme, sr in per_scheme.items():
            runs[scheme], e = _resolve(results, sr)
            err = err or e
        if err is not None:
            row = error_row("treeadd", "sweep", err)
            row["passes"] = p
            rows.append(row)
            continue
        base = runs["base"]
        rows.append({
            "passes": p,
            "hardware": round(runs["hardware"].normalized(base.total), 3),
            "cooperative": round(runs["cooperative"].normalized(base.total), 3),
            "dbp": round(runs["dbp"].normalized(base.total), 3),
        })
    return rows
