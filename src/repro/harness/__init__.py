"""Experiment harness: scheme runner, per-figure experiments, reporting."""

from .analysis import StallLine, StallReport, stall_report
from .cache import ResultCache, code_fingerprint, spec_key
from .executor import (
    CellResult,
    RunSpec,
    ScheduledRun,
    SweepError,
    SweepExecutor,
    SweepPlan,
    SweepResults,
    error_row,
)
from .experiments import (
    FIGURE4_SUBJECTS,
    MEMORY_BOUND,
    creation_overhead,
    figure4,
    figure5,
    figure5_summary,
    figure6,
    figure7,
    onchip_table_ablation,
    small_params,
    table1,
    traversal_count_sweep,
)
from .reporting import format_table, normalized_bar, print_rows
from .runner import SCHEMES, BenchmarkRunner, SchemeRun, run_scheme, scheme_plan

__all__ = [
    "BenchmarkRunner",
    "CellResult",
    "ResultCache",
    "RunSpec",
    "ScheduledRun",
    "StallLine",
    "StallReport",
    "SweepError",
    "SweepExecutor",
    "SweepPlan",
    "SweepResults",
    "code_fingerprint",
    "error_row",
    "spec_key",
    "stall_report",
    "FIGURE4_SUBJECTS",
    "MEMORY_BOUND",
    "SCHEMES",
    "SchemeRun",
    "creation_overhead",
    "figure4",
    "figure5",
    "figure5_summary",
    "figure6",
    "figure7",
    "format_table",
    "normalized_bar",
    "onchip_table_ablation",
    "print_rows",
    "run_scheme",
    "scheme_plan",
    "small_params",
    "table1",
    "traversal_count_sweep",
]
