"""Deterministic fault injection for the sweep executor.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules, each matching
sweep cells by ``benchmark/variant/engine`` glob patterns and injecting
one failure mode for the first ``times`` attempts of every matching cell:

``crash``
    The worker dies abruptly.  In a pool worker this is ``os._exit`` —
    the pool breaks (``BrokenProcessPool``) and the executor must rebuild
    it; in-process (serial) execution raises :class:`InjectedCrash`
    instead, which surfaces through the same error-attempt path.
``hang``
    The worker sleeps past the executor's per-cell timeout (``seconds``
    per rule, else the plan's ``hang_seconds``).  A parallel executor
    must reap the hung worker; a serial executor detects the overrun
    after the fact.  Keep ``seconds`` finite so an executor with no
    timeout configured still terminates.
``transient``
    Raises :class:`TransientFault` — the "retryable blip" the executor's
    bounded-retry/backoff machinery exists for.
``corrupt``
    Does not fire in the worker at all: the executor clobbers the cell's
    on-disk cache entry before lookup, exercising the cache's
    corrupt-entry detection and the recompute path.
``crash-pool`` / ``drop-heartbeat`` / ``dup-result``
    Service-layer kinds (see :data:`SERVICE_FAULT_KINDS`): evaluated by
    the ``service`` backend per job submission and shipped to the
    ``repro serve`` pool as directives, exercising the scheduler's
    pool-failover, lease-expiry, and idempotent-result handling.  They
    never fire for serial or local process-pool sweeps.

Determinism: whether a fault fires depends only on ``(spec, attempt)``
— no randomness, no wall clock — so a faulty sweep retried to success
must assemble rows bit-identical to a fault-free sweep.  Plans are plain
frozen dataclasses and pickle cleanly into pool workers.

Textual form (the CLI's ``--inject-faults``)::

    benchmark[/variant[/engine]]=kind[:times][@seconds]

comma- or semicolon-separated, e.g.
``treeadd=crash, health//hardware=transient:2, em3d/baseline=hang:1@2.5``.
Omitted selector parts default to ``*`` (match everything).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from .executor import RunSpec

#: Kinds injected inside the worker running the cell.
WORKER_FAULT_KINDS = ("crash", "hang", "transient")

#: Kinds injected at the sweep-service layer (``repro serve`` pools):
#: ``crash-pool`` kills the whole serving process after it leases the
#: matching job (the client must fail over to another pool),
#: ``drop-heartbeat`` blackholes the job after its lease (no heartbeat,
#: no result — the client's lease TTL must expire and re-charge the
#: cell), and ``dup-result`` delivers the job's result twice (the
#: client's idempotent assembly must count and drop the duplicate).
SERVICE_FAULT_KINDS = ("crash-pool", "drop-heartbeat", "dup-result")

FAULT_KINDS = WORKER_FAULT_KINDS + ("corrupt",) + SERVICE_FAULT_KINDS

#: Default sleep for ``hang`` rules that give no ``@seconds`` — long
#: enough to trip any sane timeout, short enough that a timeout-less
#: serial run still finishes.
DEFAULT_HANG_SECONDS = 30.0

#: Set by the pool-worker initializer so ``crash`` knows it may
#: ``os._exit`` without taking the whole test process down.
_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """ProcessPoolExecutor initializer: this process is expendable."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


class FaultPlanError(ReproError):
    """An ``--inject-faults`` plan failed to parse."""


class TransientFault(ReproError):
    """An injected retryable failure (the fault harness's 'blip')."""


class InjectedCrash(ReproError):
    """An injected worker death, softened to an exception because the
    cell ran in-process (serial mode) where ``os._exit`` would kill the
    harness itself."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: selector globs + failure mode."""

    benchmark: str = "*"
    variant: str = "*"
    engine: str = "*"
    kind: str = "transient"
    times: int = 1
    seconds: float | None = None  # hang duration override

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.times < 1:
            raise FaultPlanError(f"fault times must be >= 1, got {self.times}")

    def matches(self, spec: "RunSpec") -> bool:
        return (
            fnmatchcase(spec.benchmark, self.benchmark)
            and fnmatchcase(spec.variant, self.variant)
            and fnmatchcase(spec.engine, self.engine)
        )

    def fires(self, spec: "RunSpec", attempt: int) -> bool:
        return attempt < self.times and self.matches(spec)

    def describe(self) -> str:
        sel = f"{self.benchmark}/{self.variant}/{self.engine}"
        extra = f"@{self.seconds}" if self.seconds is not None else ""
        return f"{sel}={self.kind}:{self.times}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered rule list; the first matching rule per cell wins."""

    specs: tuple[FaultSpec, ...] = ()
    hang_seconds: float = DEFAULT_HANG_SECONDS

    @classmethod
    def of(cls, *specs: FaultSpec, hang_seconds: float = DEFAULT_HANG_SECONDS
           ) -> "FaultPlan":
        return cls(tuple(specs), hang_seconds)

    @classmethod
    def parse(cls, text: str, hang_seconds: float = DEFAULT_HANG_SECONDS
              ) -> "FaultPlan":
        """Parse the ``--inject-faults`` mini-language (module docstring)."""
        specs = []
        for entry in text.replace(";", ",").split(","):
            entry = entry.strip()
            if not entry:
                continue
            selector, sep, action = entry.partition("=")
            if not sep or not selector.strip():
                raise FaultPlanError(
                    f"fault entry {entry!r} is not selector=kind[:times][@seconds]"
                )
            parts = [p.strip() or "*" for p in selector.strip().split("/")]
            if len(parts) > 3:
                raise FaultPlanError(
                    f"selector {selector!r} has more than benchmark/variant/engine"
                )
            parts += ["*"] * (3 - len(parts))
            action = action.strip()
            seconds: float | None = None
            if "@" in action:
                action, _, secs = action.partition("@")
                try:
                    seconds = float(secs)
                except ValueError:
                    raise FaultPlanError(f"bad seconds in fault entry {entry!r}")
            times = 1
            if ":" in action:
                action, _, n = action.partition(":")
                try:
                    times = int(n)
                except ValueError:
                    raise FaultPlanError(f"bad times in fault entry {entry!r}")
            specs.append(FaultSpec(*parts, kind=action, times=times,
                                   seconds=seconds))
        if not specs:
            raise FaultPlanError(f"fault plan {text!r} contains no rules")
        return cls(tuple(specs), hang_seconds)

    # ------------------------------------------------------------------

    def rule_for(self, spec: "RunSpec", attempt: int,
                 kinds: tuple[str, ...]) -> FaultSpec | None:
        for rule in self.specs:
            if rule.kind in kinds and rule.matches(spec):
                # First matching rule wins — even when exhausted, it
                # shadows later catch-alls for this cell.
                return rule if attempt < rule.times else None
        return None

    def fires(self, spec: "RunSpec", attempt: int) -> bool:
        """Will *any* worker-side fault fire for this attempt?  (The
        executor counts injections in the parent, where counters live.)"""
        return self.rule_for(spec, attempt, WORKER_FAULT_KINDS) is not None

    def corrupts(self, spec: "RunSpec", attempt: int = 0) -> bool:
        """Should the executor clobber this cell's cache entry?"""
        return self.rule_for(spec, attempt, ("corrupt",)) is not None

    def service_rule(self, spec: "RunSpec", attempt: int) -> FaultSpec | None:
        """The service-layer fault (crash-pool / drop-heartbeat /
        dup-result) firing for this job submission, if any.  Evaluated by
        the *client* (deterministically, like every other kind) and
        shipped to the serving pool as a per-job directive — the server
        itself needs no fault plan."""
        return self.rule_for(spec, attempt, SERVICE_FAULT_KINDS)

    def worker_specs(self) -> "FaultPlan | None":
        """The plan restricted to worker-side kinds, for shipping into
        pool workers (service directives and cache corruption are
        handled before the worker ever sees the job)."""
        rules = tuple(r for r in self.specs if r.kind in WORKER_FAULT_KINDS)
        if not rules:
            return None
        return FaultPlan(rules, self.hang_seconds)

    def apply(self, spec: "RunSpec", attempt: int) -> None:
        """Worker-side injection point, called before the cell simulates.

        Raises / sleeps / exits according to the first matching rule;
        returns quietly when nothing fires.
        """
        rule = self.rule_for(spec, attempt, ("crash", "hang", "transient"))
        if rule is None:
            return
        if rule.kind == "transient":
            raise TransientFault(
                f"injected transient failure (attempt {attempt}, "
                f"rule {rule.describe()})"
            )
        if rule.kind == "hang":
            time.sleep(rule.seconds if rule.seconds is not None
                       else self.hang_seconds)
            return
        # crash: die for real only when this process is a disposable
        # pool worker; otherwise degrade to an exception.
        if _IN_POOL_WORKER:
            os._exit(13)
        raise InjectedCrash(
            f"injected worker crash (attempt {attempt}, rule {rule.describe()})"
        )

    def describe(self) -> str:
        return "; ".join(rule.describe() for rule in self.specs)


def parse_fault_plan(text: str | None) -> FaultPlan | None:
    """CLI helper: ``None``/empty passes through as 'no faults'."""
    return FaultPlan.parse(text) if text else None


__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "TransientFault",
    "mark_pool_worker",
    "parse_fault_plan",
]
