"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable


def format_table(rows: list[dict[str, object]], title: str | None = None) -> str:
    """Render a list of dicts as an aligned text table.

    Columns are the union of all rows' keys in first-seen order, so rows
    with extra or missing keys render blanks instead of losing data."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    seen: set[str] = set()
    for r in rows:
        for k in r:
            if k not in seen:
                seen.add(k)
                columns.append(k)
    cells = [[_fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def normalized_bar(value: float, scale: int = 40) -> str:
    """ASCII bar for normalized execution times (1.0 = full scale)."""
    n = max(0, min(scale * 2, round(value * scale)))
    return "#" * n


def print_rows(rows: Iterable[dict[str, object]], title: str | None = None) -> None:
    print(format_table(list(rows), title))
