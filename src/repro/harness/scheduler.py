"""The sweep scheduler: plan → shard → dispatch → assemble.

:class:`Scheduler` is the policy layer of sweep execution.  It owns
everything a backend must not reinvent:

* **Plan hygiene** — deduplication preserving first-seen order, so
  identical cells are computed once and results assemble in plan order
  whatever the backend's completion order.
* **Replay** — journal first (``--resume``), then the content-addressed
  result cache, before any worker sees a cell.
* **Retry policy** — bounded retries with exponential backoff, timeout
  accounting, final-failure recording (:meth:`_fail_or_requeue`).
* **Leases** — bookkeeping for backends whose workers live elsewhere
  (the sweep service): granted leases, heartbeats, expiries, and
  idempotent duplicate-result handling, all counted in the obs
  registry.
* **Persistence** — cache writes + journal checkpoints per completed
  cell (:meth:`_finish`), and narrated progress.

The mechanics of *where* a cell runs live in
:mod:`repro.harness.backends`; the scheduler picks a backend (explicit
``backend=`` name/instance, else ``serial`` for ``--jobs 1`` or trivial
plans, else the local process pool) and hands itself over.

:class:`~repro.harness.executor.SweepExecutor` is the historical name
for this class and remains the public entry point.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable, Sequence

from ..obs import MetricRegistry
from .backends import BACKENDS, WorkerBackend, detect_cpus
from .cache import ResultCache
from .cells import Attempt, CellResult, RunSpec
from .faults import FaultPlan
from .journal import SweepJournal

Progress = Callable[[str], None]

#: Default seconds a service lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL = 15.0

#: Default seconds the service backend waits for a worker pool to
#: (re)appear before failing the remaining cells.
DEFAULT_POOL_WAIT = 30.0


class Scheduler:
    """Executes a deduplicated list of cells through a worker backend,
    with optional per-cell timeout, bounded retry, checkpoint-resume
    journaling, and deterministic fault injection."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        journal: SweepJournal | None = None,
        faults: FaultPlan | None = None,
        registry: MetricRegistry | None = None,
        sleep: Callable[[float], None] = time.sleep,
        backend: str | WorkerBackend | None = None,
        pools: Sequence[str] = (),
        lease_ttl: float = DEFAULT_LEASE_TTL,
        pool_wait: float = DEFAULT_POOL_WAIT,
    ) -> None:
        # jobs == 0 requests auto-detection (cgroup/affinity-aware).
        self.jobs = detect_cpus() if jobs == 0 else max(1, jobs)
        self.cache = cache
        self.progress = progress
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.journal = journal
        self.faults = faults
        self._sleep = sleep
        self.backend = backend
        self.pools = list(pools)
        self.lease_ttl = lease_ttl
        self.pool_wait = pool_wait
        self.registry = (
            registry
            or (journal.registry if journal is not None else None)
            or (cache.registry if cache is not None else None)
            or MetricRegistry()
        )
        reg = self.registry
        self._c_retries = reg.counter(
            "sweep.retries", help="cell attempts re-scheduled after a failure"
        )
        self._c_timeouts = reg.counter(
            "sweep.timeouts", help="cell attempts abandoned past the timeout"
        )
        self._c_failures = reg.counter(
            "sweep.failures", help="cells whose final attempt still failed"
        )
        self._c_pool_breaks = reg.counter(
            "sweep.pool_breaks",
            help="worker pools abandoned after a crash or hung worker",
        )
        self._c_faults = reg.counter(
            "sweep.faults.injected", help="fault-plan injections performed"
        )
        self._c_executed = reg.counter(
            "sweep.executed", help="cells computed by a worker this sweep"
        )
        self._c_leases = reg.counter(
            "sweep.leases", help="service jobs leased to a worker pool"
        )
        self._c_heartbeats = reg.counter(
            "sweep.heartbeats", help="service lease heartbeats received"
        )
        self._c_lease_expiries = reg.counter(
            "sweep.lease_expiries",
            help="service leases expired without heartbeat or result",
        )
        self._c_dup_results = reg.counter(
            "sweep.dup_results",
            help="duplicate/stale service results dropped idempotently",
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _narrate(self, done: int, total: int, cell: CellResult) -> None:
        if self.progress is None:
            return
        if not cell.ok:
            status = "ERROR"
        elif cell.replayed:
            status = "resume hit"
        elif cell.cached:
            status = "cache hit"
        elif cell.spec.kind == "sim":
            status = f"{cell.result.cycles} cycles"
        else:
            status = "done"
        if cell.attempts > 1:
            status += f" (attempt {cell.attempts})"
        self.progress(f"[{done}/{total}] {cell.spec.describe()}: {status}")

    def _finish(self, cell: CellResult, done: int, total: int) -> CellResult:
        cache = self.cache
        if (
            cache is not None
            and cell.ok
            and not cell.cached
            and not cell.replayed
            and cell.spec.kind == "sim"
        ):
            cache.put(cell.spec, cell.result)
            cache.note_write()
        if self.journal is not None and cell.ok and not cell.replayed:
            self.journal.record(cell.spec, cell.result)
        self._narrate(done, total, cell)
        return cell

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential: backoff, 2*backoff, 4*backoff, ... per retry."""
        return self.backoff * (2 ** attempt)

    def _note_injection(self, spec: RunSpec, attempt: int) -> None:
        if self.faults is not None and self.faults.fires(spec, attempt):
            self._c_faults.inc()

    def _corrupt_cache_entry(self, spec: RunSpec) -> None:
        """The ``corrupt`` fault: clobber the cell's cache entry on disk
        so the lookup exercises the invalid-entry -> recompute path."""
        assert self.cache is not None
        path = self.cache.path(self.cache.key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        # Valid JSON with the right schema tag but a gutted body: trips
        # the cache's invalid-entry detection, not just a read miss.
        path.write_text(
            '{"schema": "repro.sim_result/1", "result": {"corrupt": true}}'
        )
        self._c_faults.inc()

    def _fail_or_requeue(
        self,
        item: Attempt,
        kind: str,
        tb: str,
        queue: deque,
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        """One failed attempt: requeue with backoff while the retry
        budget lasts, else record the final error cell."""
        if item.attempt < self.retries:
            self._c_retries.inc()
            self._sleep(self._backoff_delay(item.attempt))
            queue.append(Attempt(item.spec, item.attempt + 1))
            return done
        self._c_failures.inc()
        done += 1
        results[item.spec] = self._finish(
            CellResult(item.spec, None, error=tb, error_kind=kind,
                       attempts=item.attempt + 1),
            done, total,
        )
        return done

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    @staticmethod
    def shard(specs: Sequence[RunSpec], shards: int) -> list[list[RunSpec]]:
        """Partition ``specs`` round-robin into ``shards`` disjoint
        lists.  Deterministic in the input order, preserves relative
        order inside each shard, and balances cell counts to within one
        — the static partition the service backend seeds pools with."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        out: list[list[RunSpec]] = [[] for _ in range(shards)]
        for i, spec in enumerate(specs):
            out[i % shards].append(spec)
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _resolve_backend(self, todo: list[RunSpec]) -> WorkerBackend:
        """An explicit ``backend=`` always wins; the legacy implicit
        choice (serial for ``--jobs 1`` or trivial plans, local process
        pool otherwise) is preserved bit-for-bit."""
        choice = self.backend
        if isinstance(choice, WorkerBackend):
            return choice
        if choice is None:
            choice = (
                "serial" if self.jobs == 1 or len(todo) <= 1 else "process"
            )
        return BACKENDS.get(choice)()

    def execute(self, specs: Iterable[RunSpec]) -> dict[RunSpec, CellResult]:
        """Run every distinct spec; returns ``spec -> CellResult``."""
        plan: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                plan.append(spec)

        results: dict[RunSpec, CellResult] = {}
        todo: list[RunSpec] = []
        cache = self.cache
        journal = self.journal
        for spec in plan:
            if journal is not None:
                replayed = journal.get(spec)
                if replayed is not None:
                    results[spec] = CellResult(spec, replayed, replayed=True)
                    continue
            if cache is not None and spec.kind == "sim":
                if self.faults is not None and self.faults.corrupts(spec):
                    self._corrupt_cache_entry(spec)
                cached = cache.get(spec)
                if cached is not None:
                    results[spec] = CellResult(spec, cached, cached=True)
                    continue
            todo.append(spec)

        total = len(plan)
        done = 0
        for spec, cell in results.items():
            done += 1
            if journal is not None and cell.cached:
                journal.record(spec, cell.result)
            self._narrate(done, total, cell)

        if todo:
            done = self._resolve_backend(todo).run(
                self, todo, results, done, total
            )

        # Every planned cell must be accounted for: a backend that lost
        # cells (e.g. the service ran out of pools mid-retry) would
        # otherwise surface as a KeyError deep inside row assembly.
        missing = [spec for spec in plan if spec not in results]
        for spec in missing:
            self._c_failures.inc()
            done += 1
            results[spec] = self._finish(
                CellResult(
                    spec, None,
                    error="BackendError: backend returned no result for cell",
                    error_kind="BackendError",
                ),
                done, total,
            )
        return results

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "executed": self._c_executed.value,
            "retries": self._c_retries.value,
            "timeouts": self._c_timeouts.value,
            "failures": self._c_failures.value,
            "pool_breaks": self._c_pool_breaks.value,
            "faults_injected": self._c_faults.value,
            "leases": self._c_leases.value,
            "heartbeats": self._c_heartbeats.value,
            "lease_expiries": self._c_lease_expiries.value,
            "dup_results": self._c_dup_results.value,
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"sweep: {s['executed']} cells executed, {s['retries']} retries, "
            f"{s['timeouts']} timeouts, {s['failures']} failures, "
            f"{s['pool_breaks']} pool restarts"
        )


__all__ = [
    "DEFAULT_LEASE_TTL",
    "DEFAULT_POOL_WAIT",
    "Progress",
    "Scheduler",
]
