"""Sweep execution facade: plans, the executor, and result assembly.

Historically this module was an 824-line monolith owning everything
from the worker body to the process pool.  It is now the thin public
face of a layered sweep service:

* :mod:`repro.harness.cells` — the cell vocabulary (:class:`RunSpec`,
  :class:`CellResult`, the ``run_cell`` worker body, wire payloads);
* :mod:`repro.harness.scheduler` — the :class:`Scheduler` policy layer
  (dedup, journal/cache replay, retries/timeouts/backoff, lease
  bookkeeping, deterministic plan-order assembly);
* :mod:`repro.harness.backends` — the pluggable worker backends
  (``serial`` / ``process`` / ``service``) behind the ``BACKENDS``
  registry;
* :mod:`repro.harness.protocol` / :mod:`repro.harness.service` — the
  ``repro.job/1`` wire format and the ``repro serve`` worker pools.

:class:`SweepExecutor` *is* the scheduler (a subclass adding nothing),
kept under its historical name because every experiment, spec, CLI
command, and test builds one.  All semantics — ``--jobs N``,
``--resume`` journal replay, fault drills, retry/timeout accounting —
are preserved bit-identically; sweeps gain ``backend=``/``pools=`` for
service execution and ``jobs=0`` for cgroup/affinity-aware
auto-detection.

Guarantees (unchanged):

* **Deterministic ordering** — results are keyed by spec and assembled
  in plan order, so serial, pooled, and service sweeps produce
  identical rows.
* **Work sharing** — identical cells are planned once; the
  :class:`~repro.harness.cache.ResultCache` extends the sharing across
  processes and sweeps, and a
  :class:`~repro.harness.journal.SweepJournal` checkpoints completed
  cells so an interrupted sweep resumes where it stopped.
* **Error isolation** — a cell that raises becomes an error
  :class:`CellResult` instead of aborting the sweep.
* **Bounded retry, per-cell timeouts, crash recovery, clean
  interruption, narrated progress** — see :class:`Scheduler` and the
  backends for the mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import MachineConfig
from ..cpu.stats import SimResult
from ..workloads import get_workload
from .cache import ResultCache
from .cells import (  # noqa: F401  (re-exported for back-compat)
    Attempt,
    CellError,
    CellResult,
    RunSpec,
    SweepError,
    _freeze_params,
    error_row,
    run_cell,
)
from .cells import _run_cell  # noqa: F401  (historical pool-worker name)
from .runner import SchemeRun, scheme_plan
from .scheduler import Progress, Scheduler

# Back-compat: the private attempt record under its pre-refactor name.
_Attempt = Attempt


class SweepExecutor(Scheduler):
    """The sweep scheduler under its historical public name."""


# ----------------------------------------------------------------------
# Scheme-level planning (what the figure experiments consume)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduledRun:
    """One SchemeRun-to-be: a timing cell plus its compute-time cell."""

    benchmark: str
    scheme: str
    variant: str
    timing: RunSpec
    compute: RunSpec


class SweepPlan:
    """Collects cells for one experiment, then executes them at once.

    ``add_run``/``add_variant_run`` mirror ``BenchmarkRunner.run`` /
    ``run_variant`` but defer execution: each returns a
    :class:`ScheduledRun` handle that resolves to a full
    :class:`~repro.harness.runner.SchemeRun` after :meth:`execute`.
    Compute-time cells (perfect data memory, no engine) are shared across
    schemes of the same program variant by deduplication.
    """

    def __init__(self, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._specs: list[RunSpec] = []

    def add(self, spec: RunSpec) -> RunSpec:
        self._specs.append(spec)
        return spec

    def add_run(
        self,
        benchmark: str,
        scheme: str,
        params: dict[str, Any] | None = None,
        idiom: str | None = None,
        cfg: MachineConfig | None = None,
        profile: bool = False,
        sim_engine: str | None = None,
        telemetry: bool = False,
    ) -> ScheduledRun:
        cfg = cfg or self.cfg
        workload = get_workload(benchmark, **(params or {}))
        variant, engine = scheme_plan(workload, scheme, idiom)
        return self._schedule(
            benchmark, scheme, variant, engine, params, cfg, profile,
            sim_engine, telemetry,
        )

    def add_variant_run(
        self,
        benchmark: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
        profile: bool = False,
        sim_engine: str | None = None,
        telemetry: bool = False,
    ) -> ScheduledRun:
        """Arbitrary variant/engine pairing (Figure 4 idiom comparison)."""
        cfg = cfg or self.cfg
        return self._schedule(
            benchmark, f"{engine}:{variant}", variant, engine, params, cfg,
            profile, sim_engine, telemetry,
        )

    def add_table1(
        self,
        benchmark: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
        sim_engine: str | None = None,
    ) -> RunSpec:
        return self.add(
            RunSpec.make(
                benchmark, "baseline", "none", cfg or self.cfg, params,
                kind="table1", sim_engine=sim_engine,
            )
        )

    def _schedule(
        self,
        benchmark: str,
        scheme: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None,
        cfg: MachineConfig,
        profile: bool = False,
        sim_engine: str | None = None,
        telemetry: bool = False,
    ) -> ScheduledRun:
        # Only the timing cell is profiled/telemetered; compute-time cells
        # stay shareable across observed and unobserved experiments.
        timing = self.add(
            RunSpec.make(benchmark, variant, engine, cfg, params,
                         profile=profile, sim_engine=sim_engine,
                         telemetry=telemetry)
        )
        compute = self.add(
            RunSpec.make(benchmark, variant, "none", cfg.perfect(), params,
                         sim_engine=sim_engine)
        )
        return ScheduledRun(benchmark, scheme, variant, timing, compute)

    def execute(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
        executor: SweepExecutor | None = None,
    ) -> "SweepResults":
        """Execute the collected cells.  A fully-configured ``executor``
        (timeout/retry/journal/faults/backend) takes precedence over the
        simple ``jobs``/``cache``/``progress`` shorthand."""
        if executor is None:
            executor = SweepExecutor(jobs=jobs, cache=cache, progress=progress)
        return SweepResults(executor.execute(self._specs))


class SweepResults:
    """Spec-keyed results with SchemeRun assembly."""

    def __init__(self, cells: dict[RunSpec, CellResult]) -> None:
        self.cells = cells

    def cell(self, spec: RunSpec) -> CellResult:
        return self.cells[spec]

    @staticmethod
    def _cell_error(cell: CellResult) -> CellError | None:
        if cell.error is None:
            return None
        return CellError(cell.error, cell.error_kind or "")

    def error(self, run: ScheduledRun | RunSpec) -> CellError | None:
        """The first error among the cells backing ``run`` (None if ok).
        The returned string carries the exception class name as
        ``.kind``, which error rows surface for grepping."""
        if isinstance(run, RunSpec):
            return self._cell_error(self.cells[run])
        return (
            self._cell_error(self.cells[run.timing])
            or self._cell_error(self.cells[run.compute])
        )

    def scheme_run(self, run: ScheduledRun) -> SchemeRun:
        """Assemble the SchemeRun for ``run``; raises :class:`SweepError`
        if either backing cell failed."""
        err = self.error(run)
        if err is not None:
            raise SweepError(
                f"{run.benchmark}/{run.scheme} failed:\n{err}"
            )
        timing: SimResult = self.cells[run.timing].result
        compute: SimResult = self.cells[run.compute].result
        return SchemeRun(
            benchmark=run.benchmark,
            scheme=run.scheme,
            variant=run.variant,
            total=timing.cycles,
            compute=compute.cycles,
            result=timing,
        )


__all__ = [
    "CellError",
    "CellResult",
    "Progress",
    "RunSpec",
    "ScheduledRun",
    "Scheduler",
    "SweepError",
    "SweepExecutor",
    "SweepPlan",
    "SweepResults",
    "error_row",
    "run_cell",
]
