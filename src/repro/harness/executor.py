"""Parallel, cached, fault-tolerant sweep execution for the harness.

Every paper artifact (Table 1, Figures 4-7, the X1/X2 extensions) is a
matrix of independent simulations.  This module decomposes such a matrix
into :class:`RunSpec` cells — one ``simulate()`` call each — and executes
the deduplicated plan either serially (the default, bit-identical to the
historical single-process path) or fanned out over a
``ProcessPoolExecutor`` (``jobs > 1``).  Guarantees:

* **Deterministic ordering** — results are keyed by spec and assembled in
  plan order, so serial and parallel sweeps produce identical rows.
* **Work sharing** — identical cells (e.g. the baseline compute-time run
  needed by the base, hardware, and dbp schemes) are planned once; a
  :class:`~repro.harness.cache.ResultCache` extends the sharing across
  processes and sweeps, and a
  :class:`~repro.harness.journal.SweepJournal` checkpoints completed
  cells so an interrupted sweep resumes where it stopped.
* **Error isolation** — a cell that raises becomes an error
  :class:`CellResult` (traceback plus exception class name) instead of
  aborting the sweep; experiment assembly turns it into an error row.
* **Bounded retry with exponential backoff** — transient failures
  (including injected ones) are retried up to ``retries`` times before
  the final failure is preserved as the error cell.
* **Per-cell wall-clock timeouts** — a hung worker is reaped (the pool
  is abandoned, its processes terminated, and a fresh pool picks up the
  surviving cells); serial execution detects the overrun after the cell
  returns.  Either way the cell is charged a timeout attempt.
* **Crash recovery** — a worker process dying (``BrokenProcessPool``)
  costs every in-flight cell one attempt (the victims are
  indistinguishable); the pool is rebuilt and the sweep continues.
* **Clean interruption** — ``KeyboardInterrupt`` cancels pending
  futures, shuts the pool down (``cancel_futures=True``), terminates
  workers, and re-raises; journaled cells survive for ``--resume``.
* **Narrated progress** — an optional ``progress`` callable receives one
  line per completed cell.

Workers rebuild the workload program from ``(benchmark, params, variant)``
rather than unpickling it: workload builds are deterministic, programs are
large, and the rebuild is what the cache key already identifies.

Retry/timeout/crash/fault/journal activity is counted in an obs
:class:`~repro.obs.metrics.MetricRegistry` (``sweep.*`` metrics) so the
robustness machinery is observable, and testable, from the outside.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..config import MachineConfig
from ..core.characterization import characterize
from ..cpu.simulator import simulate
from ..cpu.stats import SimResult
from ..errors import ReproError
from ..isa.engines import default_sim_engine
from ..obs import MetricRegistry
from ..workloads import get_workload
from .cache import ResultCache
from .faults import FaultPlan, mark_pool_worker
from .journal import SweepJournal
from .runner import SchemeRun, scheme_plan

Progress = Callable[[str], None]


class SweepError(ReproError):
    """An experiment asked for the result of a failed cell."""


class CellError(str):
    """An error traceback that also carries the exception class name, so
    ``SweepResults.error()`` stays a plain string for callers while
    error rows can be grepped by failure kind."""

    kind: str = ""

    def __new__(cls, text: str, kind: str = "") -> "CellError":
        obj = super().__new__(cls, text)
        obj.kind = kind
        return obj


def _freeze_params(params: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((params or {}).items()))


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: a (benchmark, variant, engine, config, params)
    point of a sweep.  Hashable — identical cells deduplicate in a plan
    and address the same on-disk cache entry.

    ``kind`` selects the worker: ``"sim"`` runs the timing simulation and
    returns a :class:`SimResult`; ``"table1"`` runs the Table-1
    characterization (miss-interval collection plus the compute-time run)
    and returns the row dict.

    ``profile=True`` attaches a :class:`repro.obs.Profiler` to a ``sim``
    cell; the serialized CPI stack / site table rides along in
    ``SimResult.profile`` (and therefore into the result cache — the flag
    is part of the cache key, so profiled and unprofiled runs never serve
    each other's entries).

    ``sim_engine`` is the simulation-engine registry name executing the
    cell (:mod:`repro.isa.engines`); :meth:`make` resolves the session
    default (``$REPRO_SIM_ENGINE``, else ``table``) eagerly so the cell
    identity — and with it the cache key — always names a concrete
    engine.  Engines are bit-identical, but keeping the key honest means
    a cached result always states which implementation produced it.
    """

    benchmark: str
    variant: str
    engine: str
    cfg: MachineConfig
    params: tuple[tuple[str, Any], ...] = ()
    kind: str = "sim"
    profile: bool = False
    sim_engine: str = "table"

    @classmethod
    def make(
        cls,
        benchmark: str,
        variant: str,
        engine: str,
        cfg: MachineConfig,
        params: dict[str, Any] | None = None,
        kind: str = "sim",
        profile: bool = False,
        sim_engine: str | None = None,
    ) -> "RunSpec":
        return cls(
            benchmark, variant, engine, cfg, _freeze_params(params), kind,
            profile, sim_engine or default_sim_engine(),
        )

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        label = f"{self.benchmark}[{self.variant}]"
        if self.kind != "sim":
            return f"{label} {self.kind}"
        tag = " (compute)" if self.cfg.perfect_data_memory else ""
        if self.profile:
            tag += " +profile"
        if self.sim_engine != "table":
            tag += f" [{self.sim_engine}]"
        return f"{label} x {self.engine}{tag}"


@dataclass
class CellResult:
    """Outcome of one executed (or cache-/journal-served) cell."""

    spec: RunSpec
    result: Any = None          # SimResult for "sim", row dict for "table1"
    error: str | None = None
    error_kind: str | None = None   # exception class name of the failure
    cached: bool = False            # served from the on-disk result cache
    replayed: bool = False          # served from the resume journal
    attempts: int = 1               # executions charged (1 = first try)

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_cell(
    spec: RunSpec,
    attempt: int = 0,
    faults: FaultPlan | None = None,
) -> tuple[str, ...]:
    """Worker body: build the program and simulate.  Must stay a
    module-level function (pickled by name into pool workers); never
    raises — failures come back as ``("error", kind, traceback)``."""
    try:
        if faults is not None:
            faults.apply(spec, attempt)
        workload = get_workload(spec.benchmark, **dict(spec.params))
        program = workload.build(spec.variant).program
        if spec.kind == "table1":
            row, __ = characterize(
                spec.benchmark, program, spec.cfg,
                structure=workload.structure, idioms=workload.idioms,
            )
            return ("ok", row.as_dict())
        profiler = None
        if spec.profile:
            from ..obs.profile import Profiler

            profiler = Profiler()
        result = simulate(program, spec.cfg, engine=spec.engine,
                          profile=profiler, sim_engine=spec.sim_engine)
        return ("ok", result)
    except Exception as exc:
        return ("error", type(exc).__name__, traceback.format_exc())


@dataclass
class _Attempt:
    """One scheduled execution of a cell (retries bump ``attempt``)."""

    spec: RunSpec
    attempt: int = 0
    deadline: float | None = None


class SweepExecutor:
    """Executes a deduplicated list of cells, serially or in a pool,
    with optional per-cell timeout, bounded retry, checkpoint-resume
    journaling, and deterministic fault injection."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        journal: SweepJournal | None = None,
        faults: FaultPlan | None = None,
        registry: MetricRegistry | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.progress = progress
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.journal = journal
        self.faults = faults
        self._sleep = sleep
        self.registry = (
            registry
            or (journal.registry if journal is not None else None)
            or (cache.registry if cache is not None else None)
            or MetricRegistry()
        )
        reg = self.registry
        self._c_retries = reg.counter(
            "sweep.retries", help="cell attempts re-scheduled after a failure"
        )
        self._c_timeouts = reg.counter(
            "sweep.timeouts", help="cell attempts abandoned past the timeout"
        )
        self._c_failures = reg.counter(
            "sweep.failures", help="cells whose final attempt still failed"
        )
        self._c_pool_breaks = reg.counter(
            "sweep.pool_breaks",
            help="worker pools abandoned after a crash or hung worker",
        )
        self._c_faults = reg.counter(
            "sweep.faults.injected", help="fault-plan injections performed"
        )
        self._c_executed = reg.counter(
            "sweep.executed", help="cells computed by a worker this sweep"
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _narrate(self, done: int, total: int, cell: CellResult) -> None:
        if self.progress is None:
            return
        if not cell.ok:
            status = "ERROR"
        elif cell.replayed:
            status = "resume hit"
        elif cell.cached:
            status = "cache hit"
        elif cell.spec.kind == "sim":
            status = f"{cell.result.cycles} cycles"
        else:
            status = "done"
        if cell.attempts > 1:
            status += f" (attempt {cell.attempts})"
        self.progress(f"[{done}/{total}] {cell.spec.describe()}: {status}")

    def _finish(self, cell: CellResult, done: int, total: int) -> CellResult:
        cache = self.cache
        if (
            cache is not None
            and cell.ok
            and not cell.cached
            and not cell.replayed
            and cell.spec.kind == "sim"
        ):
            cache.put(cell.spec, cell.result)
            cache.note_write()
        if self.journal is not None and cell.ok and not cell.replayed:
            self.journal.record(cell.spec, cell.result)
        self._narrate(done, total, cell)
        return cell

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential: backoff, 2*backoff, 4*backoff, ... per retry."""
        return self.backoff * (2 ** attempt)

    def _note_injection(self, spec: RunSpec, attempt: int) -> None:
        if self.faults is not None and self.faults.fires(spec, attempt):
            self._c_faults.inc()

    def _corrupt_cache_entry(self, spec: RunSpec) -> None:
        """The ``corrupt`` fault: clobber the cell's cache entry on disk
        so the lookup exercises the invalid-entry -> recompute path."""
        assert self.cache is not None
        path = self.cache.path(self.cache.key(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        # Valid JSON with the right schema tag but a gutted body: trips
        # the cache's invalid-entry detection, not just a read miss.
        path.write_text(
            '{"schema": "repro.sim_result/1", "result": {"corrupt": true}}'
        )
        self._c_faults.inc()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, specs: Iterable[RunSpec]) -> dict[RunSpec, CellResult]:
        """Run every distinct spec; returns ``spec -> CellResult``."""
        plan: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                plan.append(spec)

        results: dict[RunSpec, CellResult] = {}
        todo: list[RunSpec] = []
        cache = self.cache
        journal = self.journal
        for spec in plan:
            if journal is not None:
                replayed = journal.get(spec)
                if replayed is not None:
                    results[spec] = CellResult(spec, replayed, replayed=True)
                    continue
            if cache is not None and spec.kind == "sim":
                if self.faults is not None and self.faults.corrupts(spec):
                    self._corrupt_cache_entry(spec)
                cached = cache.get(spec)
                if cached is not None:
                    results[spec] = CellResult(spec, cached, cached=True)
                    continue
            todo.append(spec)

        total = len(plan)
        done = 0
        for spec, cell in results.items():
            done += 1
            if journal is not None and cell.cached:
                journal.record(spec, cell.result)
            self._narrate(done, total, cell)

        if self.jobs == 1 or len(todo) <= 1:
            done = self._run_serial(todo, results, done, total)
        else:
            done = self._run_pooled(todo, results, done, total)
        return results

    # -- serial --------------------------------------------------------

    def _run_serial(
        self,
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        for spec in todo:
            attempt = 0
            while True:
                self._note_injection(spec, attempt)
                self._c_executed.inc()
                start = time.monotonic()
                out = _run_cell(spec, attempt, self.faults)
                elapsed = time.monotonic() - start
                if out[0] == "ok" and (
                    self.timeout is None or elapsed <= self.timeout
                ):
                    done += 1
                    results[spec] = self._finish(
                        CellResult(spec, out[1], attempts=attempt + 1),
                        done, total,
                    )
                    break
                if out[0] == "ok":
                    # Completed, but past the wall-clock budget: a pool
                    # would have reaped it — charge a timeout attempt
                    # for serial/parallel parity.
                    self._c_timeouts.inc()
                    kind, tb = "TimeoutError", (
                        f"TimeoutError: cell exceeded --timeout "
                        f"{self.timeout}s (took {elapsed:.2f}s)"
                    )
                else:
                    kind, tb = out[1], out[2]
                if attempt < self.retries:
                    self._c_retries.inc()
                    self._sleep(self._backoff_delay(attempt))
                    attempt += 1
                    continue
                self._c_failures.inc()
                done += 1
                results[spec] = self._finish(
                    CellResult(spec, None, error=tb, error_kind=kind,
                               attempts=attempt + 1),
                    done, total,
                )
                break
        return done

    # -- pooled --------------------------------------------------------

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without waiting on hung/dead workers: cancel
        everything not started, then terminate the worker processes."""
        # Snapshot the worker processes before shutdown clears the map.
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in procs:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass

    def _fail_or_requeue(
        self,
        item: _Attempt,
        kind: str,
        tb: str,
        queue: deque,
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        """One failed attempt: requeue with backoff while the retry
        budget lasts, else record the final error cell."""
        if item.attempt < self.retries:
            self._c_retries.inc()
            self._sleep(self._backoff_delay(item.attempt))
            queue.append(_Attempt(item.spec, item.attempt + 1))
            return done
        self._c_failures.inc()
        done += 1
        results[item.spec] = self._finish(
            CellResult(item.spec, None, error=tb, error_kind=kind,
                       attempts=item.attempt + 1),
            done, total,
        )
        return done

    def _run_pooled(
        self,
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        queue: deque[_Attempt] = deque(_Attempt(spec) for spec in todo)
        while queue:
            max_inflight = min(self.jobs, len(queue))
            pool = ProcessPoolExecutor(
                max_workers=max_inflight,
                initializer=mark_pool_worker,
            )
            abandon = False
            try:
                running: dict[Any, _Attempt] = {}
                broken = False

                def submit(item: _Attempt) -> None:
                    self._note_injection(item.spec, item.attempt)
                    self._c_executed.inc()
                    if self.timeout is not None:
                        item.deadline = time.monotonic() + self.timeout
                    fut = pool.submit(
                        _run_cell, item.spec, item.attempt, self.faults
                    )
                    running[fut] = item

                def refill() -> None:
                    # Keep at most one cell per worker in flight, so a
                    # deadline measures *run* time: a cell parked in the
                    # pool's internal queue must not burn its budget.
                    while queue and not broken and len(running) < max_inflight:
                        submit(queue.popleft())

                refill()
                while running:
                    wait_for = None
                    if self.timeout is not None:
                        wait_for = max(
                            0.0,
                            min(i.deadline for i in running.values())
                            - time.monotonic(),
                        )
                    finished, __ = wait(
                        set(running), timeout=wait_for,
                        return_when=FIRST_COMPLETED,
                    )
                    if not finished:
                        # A deadline expired with nothing completing:
                        # the worker is hung.  Its process cannot be
                        # recovered individually, so charge the timed-out
                        # cells an attempt, requeue the innocent
                        # bystanders untouched, and abandon the pool.
                        now = time.monotonic()
                        expired = [
                            fut for fut, item in running.items()
                            if item.deadline is not None
                            and item.deadline <= now
                        ]
                        if not expired:
                            continue
                        for fut in expired:
                            item = running.pop(fut)
                            self._c_timeouts.inc()
                            tb = (
                                f"TimeoutError: cell exceeded --timeout "
                                f"{self.timeout}s "
                                f"(attempt {item.attempt + 1}); "
                                "hung worker terminated"
                            )
                            done = self._fail_or_requeue(
                                item, "TimeoutError", tb, queue,
                                results, done, total,
                            )
                        for item in running.values():
                            queue.append(item)
                        self._c_pool_breaks.inc()
                        abandon = True
                        break
                    for fut in finished:
                        item = running.pop(fut)
                        try:
                            out = fut.result()
                        except BrokenExecutor:
                            # A worker died; every in-flight future of
                            # this pool fails with it and the victims are
                            # indistinguishable, so each is charged one
                            # attempt.  Rebuild the pool afterwards.
                            if not broken:
                                self._c_pool_breaks.inc()
                                broken = True
                            done = self._fail_or_requeue(
                                item, "BrokenProcessPool",
                                traceback.format_exc(), queue,
                                results, done, total,
                            )
                            continue
                        except Exception as exc:
                            # The payload failed to unpickle (or another
                            # local fault); isolate it as a failed
                            # attempt of this cell only.
                            done = self._fail_or_requeue(
                                item, type(exc).__name__,
                                traceback.format_exc(), queue,
                                results, done, total,
                            )
                            continue
                        if out[0] == "ok":
                            done += 1
                            results[item.spec] = self._finish(
                                CellResult(item.spec, out[1],
                                           attempts=item.attempt + 1),
                                done, total,
                            )
                        else:
                            done = self._fail_or_requeue(
                                item, out[1], out[2], queue,
                                results, done, total,
                            )
                    # Waiting cells (and retries requeued above) go to
                    # the current pool while it is healthy.
                    refill()
                    if broken:
                        for item in running.values():
                            queue.append(item)
                        abandon = True
                        break
            except BaseException:
                # KeyboardInterrupt (or any unexpected error) must not
                # leave orphaned workers: cancel pending futures and
                # tear the pool down before propagating.
                self._abandon_pool(pool)
                raise
            else:
                if abandon:
                    self._abandon_pool(pool)
                else:
                    pool.shutdown(wait=True)
        return done

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "executed": self._c_executed.value,
            "retries": self._c_retries.value,
            "timeouts": self._c_timeouts.value,
            "failures": self._c_failures.value,
            "pool_breaks": self._c_pool_breaks.value,
            "faults_injected": self._c_faults.value,
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"sweep: {s['executed']} cells executed, {s['retries']} retries, "
            f"{s['timeouts']} timeouts, {s['failures']} failures, "
            f"{s['pool_breaks']} pool restarts"
        )


# ----------------------------------------------------------------------
# Scheme-level planning (what the figure experiments consume)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduledRun:
    """One SchemeRun-to-be: a timing cell plus its compute-time cell."""

    benchmark: str
    scheme: str
    variant: str
    timing: RunSpec
    compute: RunSpec


class SweepPlan:
    """Collects cells for one experiment, then executes them at once.

    ``add_run``/``add_variant_run`` mirror ``BenchmarkRunner.run`` /
    ``run_variant`` but defer execution: each returns a
    :class:`ScheduledRun` handle that resolves to a full
    :class:`~repro.harness.runner.SchemeRun` after :meth:`execute`.
    Compute-time cells (perfect data memory, no engine) are shared across
    schemes of the same program variant by deduplication.
    """

    def __init__(self, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._specs: list[RunSpec] = []

    def add(self, spec: RunSpec) -> RunSpec:
        self._specs.append(spec)
        return spec

    def add_run(
        self,
        benchmark: str,
        scheme: str,
        params: dict[str, Any] | None = None,
        idiom: str | None = None,
        cfg: MachineConfig | None = None,
        profile: bool = False,
        sim_engine: str | None = None,
    ) -> ScheduledRun:
        cfg = cfg or self.cfg
        workload = get_workload(benchmark, **(params or {}))
        variant, engine = scheme_plan(workload, scheme, idiom)
        return self._schedule(
            benchmark, scheme, variant, engine, params, cfg, profile,
            sim_engine,
        )

    def add_variant_run(
        self,
        benchmark: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
        profile: bool = False,
        sim_engine: str | None = None,
    ) -> ScheduledRun:
        """Arbitrary variant/engine pairing (Figure 4 idiom comparison)."""
        cfg = cfg or self.cfg
        return self._schedule(
            benchmark, f"{engine}:{variant}", variant, engine, params, cfg,
            profile, sim_engine,
        )

    def add_table1(
        self,
        benchmark: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
        sim_engine: str | None = None,
    ) -> RunSpec:
        return self.add(
            RunSpec.make(
                benchmark, "baseline", "none", cfg or self.cfg, params,
                kind="table1", sim_engine=sim_engine,
            )
        )

    def _schedule(
        self,
        benchmark: str,
        scheme: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None,
        cfg: MachineConfig,
        profile: bool = False,
        sim_engine: str | None = None,
    ) -> ScheduledRun:
        # Only the timing cell is profiled; compute-time cells stay
        # shareable across profiled and unprofiled experiments.
        timing = self.add(
            RunSpec.make(benchmark, variant, engine, cfg, params,
                         profile=profile, sim_engine=sim_engine)
        )
        compute = self.add(
            RunSpec.make(benchmark, variant, "none", cfg.perfect(), params,
                         sim_engine=sim_engine)
        )
        return ScheduledRun(benchmark, scheme, variant, timing, compute)

    def execute(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
        executor: SweepExecutor | None = None,
    ) -> "SweepResults":
        """Execute the collected cells.  A fully-configured ``executor``
        (timeout/retry/journal/faults) takes precedence over the simple
        ``jobs``/``cache``/``progress`` shorthand."""
        if executor is None:
            executor = SweepExecutor(jobs=jobs, cache=cache, progress=progress)
        return SweepResults(executor.execute(self._specs))


class SweepResults:
    """Spec-keyed results with SchemeRun assembly."""

    def __init__(self, cells: dict[RunSpec, CellResult]) -> None:
        self.cells = cells

    def cell(self, spec: RunSpec) -> CellResult:
        return self.cells[spec]

    @staticmethod
    def _cell_error(cell: CellResult) -> CellError | None:
        if cell.error is None:
            return None
        return CellError(cell.error, cell.error_kind or "")

    def error(self, run: ScheduledRun | RunSpec) -> CellError | None:
        """The first error among the cells backing ``run`` (None if ok).
        The returned string carries the exception class name as
        ``.kind``, which error rows surface for grepping."""
        if isinstance(run, RunSpec):
            return self._cell_error(self.cells[run])
        return (
            self._cell_error(self.cells[run.timing])
            or self._cell_error(self.cells[run.compute])
        )

    def scheme_run(self, run: ScheduledRun) -> SchemeRun:
        """Assemble the SchemeRun for ``run``; raises :class:`SweepError`
        if either backing cell failed."""
        err = self.error(run)
        if err is not None:
            raise SweepError(
                f"{run.benchmark}/{run.scheme} failed:\n{err}"
            )
        timing: SimResult = self.cells[run.timing].result
        compute: SimResult = self.cells[run.compute].result
        return SchemeRun(
            benchmark=run.benchmark,
            scheme=run.scheme,
            variant=run.variant,
            total=timing.cycles,
            compute=compute.cycles,
            result=timing,
        )


def error_row(
    benchmark: str,
    scheme: str,
    err: str,
    label_key: str = "scheme",
) -> dict[str, object]:
    """A ragged table row standing in for a failed cell: the last line of
    the traceback (the exception message), the failure's exception class
    name when known, plus the full text."""
    brief = err.strip().splitlines()[-1] if err.strip() else "unknown error"
    return {
        "benchmark": benchmark,
        label_key: scheme,
        "error": brief,
        "error_kind": getattr(err, "kind", "") or "",
        "error_detail": str(err),
    }
