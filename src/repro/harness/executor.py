"""Parallel, cached sweep execution for the experiment harness.

Every paper artifact (Table 1, Figures 4-7, the X1/X2 extensions) is a
matrix of independent simulations.  This module decomposes such a matrix
into :class:`RunSpec` cells — one ``simulate()`` call each — and executes
the deduplicated plan either serially (the default, bit-identical to the
historical single-process path) or fanned out over a
``ProcessPoolExecutor`` (``jobs > 1``).  Guarantees:

* **Deterministic ordering** — results are keyed by spec and assembled in
  plan order, so serial and parallel sweeps produce identical rows.
* **Work sharing** — identical cells (e.g. the baseline compute-time run
  needed by the base, hardware, and dbp schemes) are planned once; a
  :class:`~repro.harness.cache.ResultCache` extends the sharing across
  processes and sweeps.
* **Error isolation** — a cell that raises becomes an error
  :class:`CellResult` (carrying the traceback) instead of aborting the
  sweep; experiment assembly turns it into an error row.
* **Narrated progress** — an optional ``progress`` callable receives one
  line per completed cell.

Workers rebuild the workload program from ``(benchmark, params, variant)``
rather than unpickling it: workload builds are deterministic, programs are
large, and the rebuild is what the cache key already identifies.
"""

from __future__ import annotations

import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..config import MachineConfig
from ..core.characterization import characterize
from ..cpu.simulator import simulate
from ..cpu.stats import SimResult
from ..errors import ReproError
from ..workloads import get_workload
from .cache import ResultCache
from .runner import SchemeRun, scheme_plan

Progress = Callable[[str], None]


class SweepError(ReproError):
    """An experiment asked for the result of a failed cell."""


def _freeze_params(params: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((params or {}).items()))


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell: a (benchmark, variant, engine, config, params)
    point of a sweep.  Hashable — identical cells deduplicate in a plan
    and address the same on-disk cache entry.

    ``kind`` selects the worker: ``"sim"`` runs the timing simulation and
    returns a :class:`SimResult`; ``"table1"`` runs the Table-1
    characterization (miss-interval collection plus the compute-time run)
    and returns the row dict.
    """

    benchmark: str
    variant: str
    engine: str
    cfg: MachineConfig
    params: tuple[tuple[str, Any], ...] = ()
    kind: str = "sim"

    @classmethod
    def make(
        cls,
        benchmark: str,
        variant: str,
        engine: str,
        cfg: MachineConfig,
        params: dict[str, Any] | None = None,
        kind: str = "sim",
    ) -> "RunSpec":
        return cls(benchmark, variant, engine, cfg, _freeze_params(params), kind)

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        label = f"{self.benchmark}[{self.variant}]"
        if self.kind != "sim":
            return f"{label} {self.kind}"
        tag = " (compute)" if self.cfg.perfect_data_memory else ""
        return f"{label} x {self.engine}{tag}"


@dataclass
class CellResult:
    """Outcome of one executed (or cache-served) cell."""

    spec: RunSpec
    result: Any = None          # SimResult for "sim", row dict for "table1"
    error: str | None = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_cell(spec: RunSpec) -> tuple[str, Any]:
    """Worker body: build the program and simulate.  Must stay a
    module-level function (pickled by name into pool workers); never
    raises — failures come back as ``("error", traceback)``."""
    try:
        workload = get_workload(spec.benchmark, **dict(spec.params))
        program = workload.build(spec.variant).program
        if spec.kind == "table1":
            row, __ = characterize(
                spec.benchmark, program, spec.cfg,
                structure=workload.structure, idioms=workload.idioms,
            )
            return ("ok", row.as_dict())
        result = simulate(program, spec.cfg, engine=spec.engine)
        return ("ok", result)
    except Exception:
        return ("error", traceback.format_exc())


class SweepExecutor:
    """Executes a deduplicated list of cells, serially or in a pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------

    def _narrate(self, done: int, total: int, cell: CellResult) -> None:
        if self.progress is None:
            return
        if not cell.ok:
            status = "ERROR"
        elif cell.cached:
            status = "cache hit"
        elif cell.spec.kind == "sim":
            status = f"{cell.result.cycles} cycles"
        else:
            status = "done"
        self.progress(f"[{done}/{total}] {cell.spec.describe()}: {status}")

    def _finish(self, cell: CellResult, done: int, total: int) -> CellResult:
        cache = self.cache
        if (
            cache is not None
            and cell.ok
            and not cell.cached
            and cell.spec.kind == "sim"
        ):
            cache.put(cell.spec, cell.result)
            cache.note_write()
        self._narrate(done, total, cell)
        return cell

    def execute(self, specs: Iterable[RunSpec]) -> dict[RunSpec, CellResult]:
        """Run every distinct spec; returns ``spec -> CellResult``."""
        plan: list[RunSpec] = []
        seen: set[RunSpec] = set()
        for spec in specs:
            if spec not in seen:
                seen.add(spec)
                plan.append(spec)

        results: dict[RunSpec, CellResult] = {}
        todo: list[RunSpec] = []
        cache = self.cache
        for spec in plan:
            cached = (
                cache.get(spec)
                if cache is not None and spec.kind == "sim"
                else None
            )
            if cached is not None:
                results[spec] = CellResult(spec, cached, cached=True)
            else:
                todo.append(spec)
        total = len(plan)
        done = 0
        for spec, cell in results.items():
            done += 1
            self._narrate(done, total, cell)

        if self.jobs == 1 or len(todo) <= 1:
            for spec in todo:
                status, payload = _run_cell(spec)
                cell = CellResult(
                    spec,
                    payload if status == "ok" else None,
                    error=None if status == "ok" else payload,
                )
                done += 1
                results[spec] = self._finish(cell, done, total)
        else:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(todo))) as pool:
                futures = {pool.submit(_run_cell, spec): spec for spec in todo}
                pending = set(futures)
                while pending:
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        spec = futures[fut]
                        try:
                            status, payload = fut.result()
                        except Exception:
                            # A worker died (or the payload failed to
                            # unpickle); isolate it as an error cell.
                            status, payload = "error", traceback.format_exc()
                        cell = CellResult(
                            spec,
                            payload if status == "ok" else None,
                            error=None if status == "ok" else payload,
                        )
                        done += 1
                        results[spec] = self._finish(cell, done, total)
        return results


# ----------------------------------------------------------------------
# Scheme-level planning (what the figure experiments consume)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduledRun:
    """One SchemeRun-to-be: a timing cell plus its compute-time cell."""

    benchmark: str
    scheme: str
    variant: str
    timing: RunSpec
    compute: RunSpec


class SweepPlan:
    """Collects cells for one experiment, then executes them at once.

    ``add_run``/``add_variant_run`` mirror ``BenchmarkRunner.run`` /
    ``run_variant`` but defer execution: each returns a
    :class:`ScheduledRun` handle that resolves to a full
    :class:`~repro.harness.runner.SchemeRun` after :meth:`execute`.
    Compute-time cells (perfect data memory, no engine) are shared across
    schemes of the same program variant by deduplication.
    """

    def __init__(self, cfg: MachineConfig) -> None:
        self.cfg = cfg
        self._specs: list[RunSpec] = []

    def add(self, spec: RunSpec) -> RunSpec:
        self._specs.append(spec)
        return spec

    def add_run(
        self,
        benchmark: str,
        scheme: str,
        params: dict[str, Any] | None = None,
        idiom: str | None = None,
        cfg: MachineConfig | None = None,
    ) -> ScheduledRun:
        cfg = cfg or self.cfg
        workload = get_workload(benchmark, **(params or {}))
        variant, engine = scheme_plan(workload, scheme, idiom)
        return self._schedule(benchmark, scheme, variant, engine, params, cfg)

    def add_variant_run(
        self,
        benchmark: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
    ) -> ScheduledRun:
        """Arbitrary variant/engine pairing (Figure 4 idiom comparison)."""
        cfg = cfg or self.cfg
        return self._schedule(
            benchmark, f"{engine}:{variant}", variant, engine, params, cfg
        )

    def add_table1(
        self,
        benchmark: str,
        params: dict[str, Any] | None = None,
        cfg: MachineConfig | None = None,
    ) -> RunSpec:
        return self.add(
            RunSpec.make(
                benchmark, "baseline", "none", cfg or self.cfg, params,
                kind="table1",
            )
        )

    def _schedule(
        self,
        benchmark: str,
        scheme: str,
        variant: str,
        engine: str,
        params: dict[str, Any] | None,
        cfg: MachineConfig,
    ) -> ScheduledRun:
        timing = self.add(RunSpec.make(benchmark, variant, engine, cfg, params))
        compute = self.add(
            RunSpec.make(benchmark, variant, "none", cfg.perfect(), params)
        )
        return ScheduledRun(benchmark, scheme, variant, timing, compute)

    def execute(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        progress: Progress | None = None,
    ) -> "SweepResults":
        executor = SweepExecutor(jobs=jobs, cache=cache, progress=progress)
        return SweepResults(executor.execute(self._specs))


class SweepResults:
    """Spec-keyed results with SchemeRun assembly."""

    def __init__(self, cells: dict[RunSpec, CellResult]) -> None:
        self.cells = cells

    def cell(self, spec: RunSpec) -> CellResult:
        return self.cells[spec]

    def error(self, run: ScheduledRun | RunSpec) -> str | None:
        """The first error among the cells backing ``run`` (None if ok)."""
        if isinstance(run, RunSpec):
            return self.cells[run].error
        return self.cells[run.timing].error or self.cells[run.compute].error

    def scheme_run(self, run: ScheduledRun) -> SchemeRun:
        """Assemble the SchemeRun for ``run``; raises :class:`SweepError`
        if either backing cell failed."""
        err = self.error(run)
        if err is not None:
            raise SweepError(
                f"{run.benchmark}/{run.scheme} failed:\n{err}"
            )
        timing: SimResult = self.cells[run.timing].result
        compute: SimResult = self.cells[run.compute].result
        return SchemeRun(
            benchmark=run.benchmark,
            scheme=run.scheme,
            variant=run.variant,
            total=timing.cycles,
            compute=compute.cycles,
            result=timing,
        )


def error_row(
    benchmark: str,
    scheme: str,
    err: str,
    label_key: str = "scheme",
) -> dict[str, object]:
    """A ragged table row standing in for a failed cell: the last line of
    the traceback (the exception message) plus the full text."""
    brief = err.strip().splitlines()[-1] if err.strip() else "unknown error"
    return {
        "benchmark": benchmark,
        label_key: scheme,
        "error": brief,
        "error_detail": err,
    }
