"""The sweep service: ``repro serve`` worker pools and the ``service``
backend that leases cells to them.

Topology: each ``repro serve`` process is one long-lived **worker
pool** — an asyncio front end on a Unix stream socket fronting a local
``ProcessPoolExecutor`` — and a sweep client (``repro submit``, or any
figure command with ``--backend service``) connects to one or more
pools and streams cells to them as leased jobs over the
:mod:`repro.harness.protocol` wire format (``repro.job/1``).

Division of responsibility:

* The **pool** executes jobs and proves liveness: it leases every
  accepted job, heartbeats all held leases at ``ttl/4``, reaps its own
  hung workers (per-job timeout → pool abandoned and rebuilt, like the
  local process backend), and converts worker crashes into
  ``BrokenProcessPool`` error results.  It holds no sweep state: a pool
  can serve any number of sweeps, sequentially or interleaved, and be
  killed at any moment without losing anything but in-flight work.
* The **client** (the :class:`ServiceBackend` driven by the scheduler)
  owns correctness: retries, lease-expiry detection (no heartbeat
  within TTL → the attempt is charged and the cell re-queued),
  idempotent result assembly (a job id is ``spec-key:attempt``; stale
  or duplicate arrivals are counted and dropped), failover (a dead
  pool's jobs re-queue uncharged onto surviving pools), and waiting up
  to ``pool_wait`` seconds for a replacement pool before failing the
  remainder.  Completed cells flow through the shared
  :class:`~repro.harness.cache.ResultCache` and
  :class:`~repro.harness.journal.SweepJournal` exactly as local
  execution does — which is what makes a sweep spanning two worker
  pools resume with zero recompute.

Fault drill hooks: service-layer fault kinds (``crash-pool`` /
``drop-heartbeat`` / ``dup-result``) are evaluated deterministically by
the *client* per job submission and shipped as directives; the pool
honors them so drills need no server-side configuration.
"""

from __future__ import annotations

import asyncio
import os
import selectors
import socket
import time
import traceback
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..obs import MetricRegistry
from ..obs.trace import EventTrace
from .backends import (
    BACKENDS,
    BackendError,
    ProcessPoolBackend,
    WorkerBackend,
    detect_cpus,
    dispatch_tables,
    _init_pool_worker,
    _pool_run_job,
)
from .cache import spec_key
from .cells import Attempt, CellResult, RunSpec
from .faults import DEFAULT_HANG_SECONDS
from .protocol import (
    ChannelClosed,
    LineChannel,
    MAX_LINE,
    ProtocolError,
    decode,
    decode_result,
    encode,
    encode_result,
    job_id,
    message,
)

#: Fallback heartbeat interval before the first submit names a TTL.
_DEFAULT_HEARTBEAT = 1.0


# ======================================================================
# Server: one worker pool
# ======================================================================

class _Session:
    """Per-connection server state."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.configs: dict[str, dict[str, Any]] = {}
        self.jobs: dict[str, dict[str, Any]] = {}   # leased + running
        self.tasks: set[asyncio.Task] = set()
        self.heartbeat_interval = _DEFAULT_HEARTBEAT


class SweepService:
    """One ``repro serve`` worker pool.

    ``workers`` defaults to the cgroup/affinity-aware CPU count.  The
    service keeps obs counters (``serve.*``) and a wall-clock
    :class:`~repro.obs.trace.EventTrace` on the ``service`` lane so a
    pool's life (leases, job starts, results, pool rebuilds) is
    inspectable in the same Chrome-trace tooling as simulations.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike,
        workers: int | None = None,
        *,
        name: str = "pool",
        registry: MetricRegistry | None = None,
        trace: EventTrace | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.workers = workers or detect_cpus()
        self.name = name
        self.registry = registry or MetricRegistry()
        self.trace = trace
        self.progress = progress
        self._pool: ProcessPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._sessions: set[_Session] = set()
        self._started = time.monotonic()
        # crash-pool directive hook: a real pool dies on the spot; tests
        # running the service in a thread substitute a soft shutdown.
        self._die: Callable[[], None] = lambda: os._exit(13)
        reg = self.registry
        self._c_leased = reg.counter(
            "serve.leased", help="jobs leased to this pool"
        )
        self._c_completed = reg.counter(
            "serve.completed", help="job results sent by this pool"
        )
        self._c_rebuilds = reg.counter(
            "serve.pool_rebuilds", help="worker pools rebuilt after crash/hang"
        )

    # -- observability --------------------------------------------------

    def _event(self, event: str, **args: Any) -> None:
        if self.trace is not None:
            ts = int((time.monotonic() - self._started) * 1000)
            self.trace.instant(event, ts, cat="service", **args)
        if self.progress is not None:
            detail = " ".join(f"{k}={v}" for k, v in args.items())
            self.progress(f"serve[{self.name}] {event} {detail}".rstrip())

    # -- worker pool ----------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_pool_worker,
            initargs=(None, None),
        )

    def _break_pool(self, pool: ProcessPoolExecutor) -> None:
        """Abandon a crashed/hung worker pool and stand up a fresh one."""
        if self._pool is pool:
            self._pool = self._make_pool()
            self._c_rebuilds.inc()
            self._event("pool-rebuild")
        ProcessPoolBackend._abandon_pool(pool)

    # -- connection handling -------------------------------------------

    async def _send(self, session: _Session, msg: dict[str, Any]) -> None:
        async with session.lock:
            session.writer.write(encode(msg))
            await session.writer.drain()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(writer)
        self._sessions.add(session)
        heartbeat = asyncio.create_task(self._heartbeat_loop(session))
        try:
            await self._send(
                session,
                message("hello", pool=self.name, workers=self.workers),
            )
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = decode(line)
                except ProtocolError:
                    break  # confused peer: drop the connection
                if msg["type"] == "config":
                    session.configs[msg["id"]] = msg["data"]
                elif msg["type"] == "submit":
                    await self._accept(session, msg)
                # unknown forward-compatible types are ignored
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the client still connected: swallow
            # so loop teardown does not log a spurious task exception.
            pass
        finally:
            self._sessions.discard(session)
            heartbeat.cancel()
            for task in list(session.tasks):
                task.cancel()
            try:
                writer.close()
            except Exception:
                pass

    async def _heartbeat_loop(self, session: _Session) -> None:
        while True:
            await asyncio.sleep(session.heartbeat_interval)
            ids = list(session.jobs)
            if not ids:
                continue
            try:
                await self._send(session, message("heartbeat", ids=ids))
            except (ConnectionError, RuntimeError):
                return

    async def _accept(self, session: _Session, msg: dict[str, Any]) -> None:
        jid = msg["id"]
        ttl = float(msg.get("ttl") or 15.0)
        session.heartbeat_interval = min(
            session.heartbeat_interval, max(0.05, ttl / 4.0)
        )
        directive = msg.get("directive")
        await self._send(session, message("lease", id=jid, ttl=ttl))
        self._c_leased.inc()
        self._event("lease", id=jid[:20])
        if directive == "crash-pool":
            # The whole pool dies right after leasing: the drill for
            # client-side failover.  Flush the lease first so the client
            # observes lease-then-silence, not a rejected submit.
            self._event("crash-pool", id=jid[:20])
            self._die()
            return
        if directive == "drop-heartbeat":
            # Lease granted, then the job is blackholed: never runs,
            # never heartbeats (it is not in session.jobs), never
            # resolves.  The client's lease TTL must expire it.
            self._event("drop-heartbeat", id=jid[:20])
            return
        session.jobs[jid] = msg
        task = asyncio.create_task(self._run_job(session, jid, msg))
        session.tasks.add(task)
        task.add_done_callback(session.tasks.discard)

    async def _run_job(
        self, session: _Session, jid: str, msg: dict[str, Any]
    ) -> None:
        payload = msg["job"]
        attempt = int(msg.get("attempt", 0))
        cfg_data = session.configs.get(payload["config"])
        fault_text = msg.get("faults") or ""
        hang_seconds = float(msg.get("hang_seconds") or DEFAULT_HANG_SECONDS)
        timeout = msg.get("timeout")
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        pool = self._pool
        self._event("run", id=jid[:20])
        try:
            await self._send(session, message("progress", id=jid, note="running"))
            fut = loop.run_in_executor(
                pool, _pool_run_job, payload, attempt, cfg_data,
                fault_text, hang_seconds,
            )
            if timeout is not None:
                out = await asyncio.wait_for(fut, timeout=float(timeout))
            else:
                out = await fut
        except asyncio.TimeoutError:
            # Hung worker: reap the whole pool (a single worker cannot
            # be recovered) and report the timeout; the client charges
            # the attempt exactly like the local backend's reaping.
            self._break_pool(pool)
            out = (
                "error", "TimeoutError",
                f"TimeoutError: cell exceeded --timeout {timeout}s "
                f"(attempt {attempt + 1}); hung worker terminated by pool "
                f"{self.name!r}",
            )
        except BrokenExecutor:
            self._break_pool(pool)
            out = ("error", "BrokenProcessPool", traceback.format_exc())
        except asyncio.CancelledError:
            session.jobs.pop(jid, None)
            raise
        except Exception:
            out = ("error", "ServiceError", traceback.format_exc())
        session.jobs.pop(jid, None)
        if out[0] == "ok":
            kind = payload.get("kind", "sim")
            result = message(
                "result", id=jid, status="ok", kind=kind,
                data=encode_result(kind, out[1]),
            )
        else:
            result = message(
                "result", id=jid, status="error",
                error_kind=out[1], traceback=out[2],
            )
        # Count the completion before the awaited send: the client may
        # read the result and finish the whole sweep (and a caller may
        # inspect ``stats()``) before this coroutine is scheduled again.
        self._c_completed.inc()
        try:
            await self._send(session, result)
            self._event("result", id=jid[:20], status=out[0])
            if msg.get("directive") == "dup-result":
                # Deliver the result a second time: the client's
                # idempotent assembly must count and drop it.
                await self._send(session, result)
                self._event("dup-result", id=jid[:20])
        except (ConnectionError, RuntimeError):
            pass  # client went away; its retry machinery owns the cell

    # -- lifecycle ------------------------------------------------------

    async def _amain(self, ready: Callable[[], None] | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._pool = self._make_pool()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)
        server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=MAX_LINE
        )
        self._event("serving", path=str(self.socket_path),
                    workers=self.workers)
        if ready is not None:
            ready()
        try:
            async with server:
                await self._stop.wait()
        finally:
            # Hard-close surviving connections NOW, at the OS level:
            # both ``transport.close()`` and ``transport.abort()`` only
            # *schedule* the real fd teardown via ``call_soon``, and a
            # loop that is stopping (with worker futures still in
            # flight) never runs it — the client would then observe
            # pool death as a lease quietly timing out instead of an
            # immediate EOF, and its jobs would be charged rather than
            # failed over.  ``socket.shutdown`` sends the FIN
            # synchronously regardless of loop state.
            for session in list(self._sessions):
                transport = session.writer.transport
                try:
                    sock = transport.get_extra_info("socket")
                    if sock is not None:
                        sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    transport.abort()
                except Exception:
                    pass
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self.socket_path.unlink(missing_ok=True)

    def serve_forever(self, ready: Callable[[], None] | None = None) -> None:
        """Run the pool until :meth:`stop` (blocking; owns the loop)."""
        asyncio.run(self._amain(ready))

    def stop(self) -> None:
        """Request shutdown (thread-safe; idempotent — stopping a pool
        that already shut down is a no-op)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed


    def stats(self) -> dict[str, int]:
        return {
            "leased": self._c_leased.value,
            "completed": self._c_completed.value,
            "pool_rebuilds": self._c_rebuilds.value,
        }


# ======================================================================
# Client: the "service" worker backend
# ======================================================================

@dataclass
class _PoolConn:
    """Client-side state for one connected pool."""

    path: str
    chan: LineChannel
    pool_name: str = "?"
    workers: int = 0
    sent_configs: set[str] = field(default_factory=set)
    jobs: dict[str, Attempt] = field(default_factory=dict)
    deadlines: dict[str, float] = field(default_factory=dict)


class ServiceBackend(WorkerBackend):
    """Leases the scheduler's cells to ``repro serve`` pools.

    Dispatch is least-loaded across connected pools (which converges to
    the scheduler's round-robin :meth:`~Scheduler.shard` split for
    equal pools); every submission is tracked as a lease whose deadline
    is pushed forward by pool heartbeats.  Loss of a pool re-queues its
    jobs uncharged; loss of a *heartbeat* (TTL expiry) charges the
    attempt, because the job's fate is unknown — exactly the
    at-least-once regime the idempotent journal/cache make safe."""

    name = "service"

    #: Seconds between reconnect sweeps over unconnected pool paths.
    RECONNECT_INTERVAL = 0.25
    #: selectors timeout — the cadence of expiry/reconnect checks.
    TICK = 0.25

    def run(
        self,
        sched,
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        paths = [str(p) for p in sched.pools]
        if not paths:
            raise BackendError(
                "service backend needs at least one pool socket "
                "(--pool PATH; start one with `repro serve`)"
            )
        ttl = float(sched.lease_ttl)
        config_table, payloads = dispatch_tables(todo)
        keys = {spec: spec_key(spec) for spec in todo}
        worker_faults = (
            sched.faults.worker_specs() if sched.faults is not None else None
        )
        fault_text = worker_faults.describe() if worker_faults else ""
        hang_seconds = (
            sched.faults.hang_seconds if sched.faults is not None
            else DEFAULT_HANG_SECONDS
        )

        queue: deque[Attempt] = deque(Attempt(spec) for spec in todo)
        # Service-fault directives fire once per (cell, attempt): a job
        # re-queued *uncharged* (its pool died — which is exactly what
        # ``crash-pool`` causes) keeps its attempt number, and
        # re-injecting on the resubmission would cascade the drill
        # through every surviving pool.
        injected: set[tuple[RunSpec, int]] = set()
        conns: dict[str, _PoolConn] = {}
        sel = selectors.DefaultSelector()
        last_connect = 0.0
        no_pool_since: float | None = None

        def outstanding() -> int:
            return sum(len(c.jobs) for c in conns.values())

        def drop_conn(conn: _PoolConn) -> None:
            """A pool died: its jobs re-queue uncharged (nothing about
            the *cells* failed — the infrastructure did)."""
            try:
                sel.unregister(conn.chan)
            except (KeyError, ValueError):
                pass
            conn.chan.close()
            conns.pop(conn.path, None)
            sched._c_pool_breaks.inc()
            for item in conn.jobs.values():
                queue.append(item)
            conn.jobs.clear()
            conn.deadlines.clear()

        def submit(conn: _PoolConn, item: Attempt) -> None:
            spec = item.spec
            cid = payloads[spec]["config"]
            if cid not in conn.sent_configs:
                conn.chan.send(
                    message("config", id=cid, data=config_table[cid])
                )
                conn.sent_configs.add(cid)
            directive = None
            if sched.faults is not None:
                rule = sched.faults.service_rule(spec, item.attempt)
                if rule is not None and (spec, item.attempt) not in injected:
                    injected.add((spec, item.attempt))
                    directive = rule.kind
                    sched._c_faults.inc()
            sched._note_injection(spec, item.attempt)
            sched._c_executed.inc()
            jid = job_id(keys[spec], item.attempt)
            conn.chan.send(message(
                "submit", id=jid, job=payloads[spec], attempt=item.attempt,
                timeout=sched.timeout, ttl=ttl, faults=fault_text,
                hang_seconds=hang_seconds, directive=directive,
            ))
            conn.jobs[jid] = item
            # Provisional deadline until the lease (and heartbeats)
            # start arriving: a pool that accepts the connection but
            # never answers must not pin the sweep.
            conn.deadlines[jid] = time.monotonic() + ttl

        def handle(conn: _PoolConn, msg: dict[str, Any]) -> int:
            nonlocal done
            mtype = msg["type"]
            if mtype == "lease":
                jid = msg["id"]
                if jid in conn.jobs:
                    conn.deadlines[jid] = (
                        time.monotonic() + float(msg.get("ttl") or ttl)
                    )
                    sched._c_leases.inc()
            elif mtype == "heartbeat":
                now = time.monotonic()
                touched = False
                for jid in msg.get("ids", ()):
                    if jid in conn.jobs:
                        conn.deadlines[jid] = now + ttl
                        touched = True
                if touched:
                    sched._c_heartbeats.inc()
            elif mtype == "result":
                jid = msg["id"]
                item = conn.jobs.pop(jid, None)
                conn.deadlines.pop(jid, None)
                if item is None:
                    # Duplicate delivery, or a result for a lease this
                    # client already expired: idempotently dropped.
                    sched._c_dup_results.inc()
                    return done
                if msg.get("status") == "ok":
                    try:
                        result = decode_result(msg["kind"], msg["data"])
                    except (ProtocolError, KeyError, TypeError, ValueError):
                        return sched._fail_or_requeue(
                            item, "ProtocolError", traceback.format_exc(),
                            queue, results, done, total,
                        )
                    done += 1
                    results[item.spec] = sched._finish(
                        CellResult(item.spec, result,
                                   attempts=item.attempt + 1),
                        done, total,
                    )
                else:
                    done = sched._fail_or_requeue(
                        item, msg.get("error_kind") or "ServiceError",
                        msg.get("traceback") or "(no traceback)",
                        queue, results, done, total,
                    )
            # hello / progress are informational
            return done

        try:
            while queue or outstanding():
                now = time.monotonic()

                # (Re)connect to any configured pool we lost or have
                # not reached yet.
                if now - last_connect >= self.RECONNECT_INTERVAL:
                    last_connect = now
                    for path in paths:
                        if path in conns:
                            continue
                        conn = self._connect(path)
                        if conn is not None:
                            conns[path] = conn
                            sel.register(
                                conn.chan, selectors.EVENT_READ, conn
                            )

                if not conns:
                    if no_pool_since is None:
                        no_pool_since = now
                    if now - no_pool_since > sched.pool_wait:
                        # Out of pools and out of patience: fail every
                        # remaining cell explicitly.
                        remaining = list(queue)
                        queue.clear()
                        for item in remaining:
                            sched._c_failures.inc()
                            done += 1
                            results[item.spec] = sched._finish(
                                CellResult(
                                    item.spec, None,
                                    error=(
                                        "PoolUnavailable: no worker pool "
                                        f"reachable for {sched.pool_wait}s "
                                        f"(tried: {', '.join(paths)})"
                                    ),
                                    error_kind="PoolUnavailable",
                                    attempts=item.attempt + 1,
                                ),
                                done, total,
                            )
                        break
                    time.sleep(min(self.TICK, 0.1))
                    continue
                no_pool_since = None

                # Dispatch queued work to the least-loaded pools.
                while queue and conns:
                    conn = min(conns.values(), key=lambda c: len(c.jobs))
                    item = queue.popleft()
                    try:
                        submit(conn, item)
                    except (ChannelClosed, ProtocolError, OSError):
                        queue.appendleft(item)
                        drop_conn(conn)
                        if not conns:
                            break

                # Collect messages.
                dead: list[_PoolConn] = []
                for key, __ in sel.select(timeout=self.TICK):
                    conn = key.data
                    try:
                        msgs = conn.chan.receive()
                    except (ChannelClosed, ProtocolError):
                        dead.append(conn)
                        continue
                    for msg in msgs:
                        done = handle(conn, msg)
                for conn in dead:
                    drop_conn(conn)

                # Expire silent leases: no heartbeat within TTL means
                # the job's fate is unknown — charge the attempt.
                now = time.monotonic()
                for conn in list(conns.values()):
                    expired = [
                        jid for jid, deadline in conn.deadlines.items()
                        if deadline <= now
                    ]
                    for jid in expired:
                        item = conn.jobs.pop(jid, None)
                        conn.deadlines.pop(jid, None)
                        if item is None:
                            continue
                        sched._c_lease_expiries.inc()
                        done = sched._fail_or_requeue(
                            item, "LeaseExpired",
                            (
                                f"LeaseExpired: no heartbeat from pool "
                                f"{conn.pool_name!r} within {ttl}s for "
                                f"{item.spec.describe()} "
                                f"(attempt {item.attempt + 1})"
                            ),
                            queue, results, done, total,
                        )
        finally:
            for conn in list(conns.values()):
                conn.chan.close()
            sel.close()
        return done

    def _connect(self, path: str) -> _PoolConn | None:
        """One connection attempt; None when the pool is not up yet."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(1.0)
        try:
            sock.connect(path)
        except OSError:
            sock.close()
            return None
        chan = LineChannel(sock)
        conn = _PoolConn(path=path, chan=chan)
        # The hello arrives promptly (the server sends it on accept);
        # wait briefly so the protocol version is checked before any
        # job is entrusted to this pool.
        deadline = time.monotonic() + 2.0
        try:
            while time.monotonic() < deadline:
                for msg in chan.receive():
                    if msg["type"] == "hello":
                        conn.pool_name = msg.get("pool", "?")
                        conn.workers = int(msg.get("workers") or 0)
                        return conn
                time.sleep(0.01)
        except (ChannelClosed, ProtocolError):
            pass
        chan.close()
        return None


BACKENDS.register("service", ServiceBackend)


__all__ = ["ServiceBackend", "SweepService"]
