"""Pluggable worker backends for the sweep scheduler.

The :class:`~repro.harness.scheduler.Scheduler` owns *what* to run
(dedup, replay, retries, timeouts, assembly); a :class:`WorkerBackend`
owns *where* it runs.  Three ship in the :data:`BACKENDS` registry:

``serial``
    In-process, one cell at a time — the default for ``--jobs 1`` and
    trivial plans, bit-identical to the historical single-process path.
``process`` (alias ``process-pool``)
    A local ``ProcessPoolExecutor`` fan-out with hung-worker reaping and
    crash recovery — the historical ``--jobs N`` path, now with cheap
    dispatch: each distinct :class:`~repro.config.MachineConfig` ships
    once through the pool initializer (keyed by :func:`config_id`) and
    cells travel as small JSON payloads referencing it; workers memoize
    materialized configs and built workload programs across cells.
``service``
    Leases cells to one or more long-lived ``repro serve`` pools over
    the ``repro.job/1`` protocol (registered lazily from
    :mod:`repro.harness.service`).

Backends are stateless and constructed without arguments; everything
they need (jobs, timeout, retries, fault plan, counters, pool
endpoints) lives on the scheduler they are handed.

Also here: :func:`detect_cpus`, the cgroup/affinity-aware CPU count
used for ``--jobs 0`` auto-detection — ``os.process_cpu_count()`` where
it exists (3.13+), else the scheduling affinity mask, else
``os.cpu_count()`` — so a 1-CPU CI runner stops oversubscribing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import TYPE_CHECKING, Any

from ..config import MachineConfig
from ..errors import ReproError
from ..registry import Registry
from ..workloads import get_workload
from .cells import Attempt, CellResult, RunSpec, job_payload, run_cell, spec_from_payload
from .faults import DEFAULT_HANG_SECONDS, FaultPlan, mark_pool_worker

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Scheduler


class BackendError(ReproError):
    """A worker backend could not be resolved or could not run."""


def detect_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity-aware).

    ``os.cpu_count()`` reports the machine, not the allowance — on a
    1-CPU CI runner inside a 64-core host it oversubscribes 64x.  Prefer
    ``os.process_cpu_count()`` (3.13+), then the scheduling affinity
    mask, then fall back to the machine count."""
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        try:
            n = probe()
            if n:
                return n
        except OSError:  # pragma: no cover - defensive
            pass
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        pass
    return os.cpu_count() or 1


def config_id(cfg: MachineConfig) -> str:
    """Content address of one machine config (SHA-256 over its canonical
    dict) — the reference cells travel with instead of the config."""
    blob = json.dumps(cfg.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def dispatch_tables(
    todo: list[RunSpec],
) -> tuple[dict[str, dict[str, Any]], dict[RunSpec, dict[str, Any]]]:
    """The two sides of by-reference dispatch: ``config_id -> config
    dict`` (shipped once) and ``spec -> job payload`` (shipped per
    cell)."""
    configs: dict[str, dict[str, Any]] = {}
    payloads: dict[RunSpec, dict[str, Any]] = {}
    for spec in todo:
        cid = config_id(spec.cfg)
        if cid not in configs:
            configs[cid] = spec.cfg.to_dict()
        payloads[spec] = job_payload(spec, cid)
    return configs, payloads


# ----------------------------------------------------------------------
# Worker-process side: initializer + memoized job entry point
# ----------------------------------------------------------------------

#: Per-worker-process state, populated by :func:`_init_pool_worker`
#: and the lazy memos below.  Plain module globals: each pool worker is
#: its own process, so there is no sharing to guard.
_worker_config_raw: dict[str, dict[str, Any]] = {}
_worker_configs: dict[str, MachineConfig] = {}
_worker_faults: FaultPlan | None = None
_worker_fault_memo: dict[tuple[str, float], FaultPlan] = {}
_worker_programs: "OrderedDict[tuple, Any]" = OrderedDict()

#: Built programs kept per worker.  Sweeps cycle through a handful of
#: (benchmark, params, variant) combinations; the cap only exists so a
#: pathological many-workload sweep cannot grow without bound.
_PROGRAM_MEMO_CAP = 64


def _init_pool_worker(
    config_table: dict[str, dict[str, Any]] | None = None,
    faults: FaultPlan | None = None,
) -> None:
    """ProcessPoolExecutor initializer: mark the process expendable (for
    ``crash`` faults) and seed the config table + fault plan once,
    instead of pickling them into every cell."""
    mark_pool_worker()
    if config_table:
        _worker_config_raw.update(config_table)
    global _worker_faults
    _worker_faults = faults


def _worker_config(cid: str, data: dict[str, Any] | None = None) -> MachineConfig:
    """Materialize (and memoize) the config ``cid`` references."""
    cfg = _worker_configs.get(cid)
    if cfg is None:
        raw = data if data is not None else _worker_config_raw.get(cid)
        if raw is None:
            raise BackendError(f"job references unknown config {cid[:12]}…")
        cfg = MachineConfig.from_dict(raw)
        _worker_configs[cid] = cfg
    return cfg


def _worker_program(spec: RunSpec) -> Any:
    """The built program for ``spec``, memoized per worker process.

    Safe to reuse across cells: builds are deterministic and
    ``simulate()`` treats the program as read-only (the in-process
    :class:`~repro.harness.runner.BenchmarkRunner` has always reused
    built variants the same way)."""
    key = (spec.benchmark, spec.params, spec.variant)
    program = _worker_programs.get(key)
    if program is not None:
        _worker_programs.move_to_end(key)
        return program
    workload = get_workload(spec.benchmark, **dict(spec.params))
    program = workload.build(spec.variant).program
    _worker_programs[key] = program
    while len(_worker_programs) > _PROGRAM_MEMO_CAP:
        _worker_programs.popitem(last=False)
    return program


def _worker_fault_plan(
    text: str | None, hang_seconds: float
) -> FaultPlan | None:
    if text is None:
        return _worker_faults
    if not text:
        return None
    key = (text, hang_seconds)
    plan = _worker_fault_memo.get(key)
    if plan is None:
        plan = FaultPlan.parse(text, hang_seconds)
        _worker_fault_memo[key] = plan
    return plan


def _pool_run_job(
    payload: dict[str, Any],
    attempt: int = 0,
    cfg_data: dict[str, Any] | None = None,
    fault_text: str | None = None,
    hang_seconds: float = DEFAULT_HANG_SECONDS,
) -> tuple[str, ...]:
    """Pool-worker job entry: reconstruct the cell from its compact
    payload (config by reference, program via the per-worker memo) and
    run it.  ``fault_text``/``cfg_data`` serve transports that cannot
    use the initializer (the sweep service seeds per job instead);
    local pools leave them None and fall back to initializer state."""
    try:
        cfg = _worker_config(payload["config"], cfg_data)
        spec = spec_from_payload(payload, cfg)
        faults = _worker_fault_plan(fault_text, hang_seconds)
    except Exception as exc:
        return ("error", type(exc).__name__, traceback.format_exc())
    return run_cell(spec, attempt, faults,
                    program_factory=lambda: _worker_program(spec))


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------

class WorkerBackend:
    """Executes the scheduler's remaining cells.  ``run`` must account
    every cell of ``todo`` into ``results`` (ok or error), using the
    scheduler's retry/finish/counter machinery, and return the updated
    ``done`` count."""

    name = "abstract"

    def run(
        self,
        sched: "Scheduler",
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        raise NotImplementedError


class SerialBackend(WorkerBackend):
    """In-process execution, one cell at a time."""

    name = "serial"

    def run(
        self,
        sched: "Scheduler",
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        for spec in todo:
            attempt = 0
            while True:
                sched._note_injection(spec, attempt)
                sched._c_executed.inc()
                start = time.monotonic()
                out = run_cell(spec, attempt, sched.faults)
                elapsed = time.monotonic() - start
                if out[0] == "ok" and (
                    sched.timeout is None or elapsed <= sched.timeout
                ):
                    done += 1
                    results[spec] = sched._finish(
                        CellResult(spec, out[1], attempts=attempt + 1),
                        done, total,
                    )
                    break
                if out[0] == "ok":
                    # Completed, but past the wall-clock budget: a pool
                    # would have reaped it — charge a timeout attempt
                    # for serial/parallel parity.
                    sched._c_timeouts.inc()
                    kind, tb = "TimeoutError", (
                        f"TimeoutError: cell exceeded --timeout "
                        f"{sched.timeout}s (took {elapsed:.2f}s)"
                    )
                else:
                    kind, tb = out[1], out[2]
                if attempt < sched.retries:
                    sched._c_retries.inc()
                    sched._sleep(sched._backoff_delay(attempt))
                    attempt += 1
                    continue
                sched._c_failures.inc()
                done += 1
                results[spec] = sched._finish(
                    CellResult(spec, None, error=tb, error_kind=kind,
                               attempts=attempt + 1),
                    done, total,
                )
                break
        return done


class ProcessPoolBackend(WorkerBackend):
    """Local ``ProcessPoolExecutor`` fan-out with per-cell deadlines,
    hung-worker reaping (pool abandonment), and crash recovery."""

    name = "process"

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without waiting on hung/dead workers: cancel
        everything not started, then terminate the worker processes."""
        # Snapshot the worker processes before shutdown clears the map.
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in procs:
            try:
                proc.join(timeout=1.0)
            except Exception:
                pass

    def run(
        self,
        sched: "Scheduler",
        todo: list[RunSpec],
        results: dict[RunSpec, CellResult],
        done: int,
        total: int,
    ) -> int:
        config_table, payloads = dispatch_tables(todo)
        queue: deque[Attempt] = deque(Attempt(spec) for spec in todo)
        while queue:
            max_inflight = min(sched.jobs, len(queue))
            pool = ProcessPoolExecutor(
                max_workers=max_inflight,
                initializer=_init_pool_worker,
                initargs=(config_table, sched.faults),
            )
            abandon = False
            try:
                running: dict[Any, Attempt] = {}
                broken = False

                def submit(item: Attempt) -> None:
                    sched._note_injection(item.spec, item.attempt)
                    sched._c_executed.inc()
                    if sched.timeout is not None:
                        item.deadline = time.monotonic() + sched.timeout
                    fut = pool.submit(
                        _pool_run_job, payloads[item.spec], item.attempt
                    )
                    running[fut] = item

                def refill() -> None:
                    # Keep at most one cell per worker in flight, so a
                    # deadline measures *run* time: a cell parked in the
                    # pool's internal queue must not burn its budget.
                    while queue and not broken and len(running) < max_inflight:
                        submit(queue.popleft())

                refill()
                while running:
                    wait_for = None
                    if sched.timeout is not None:
                        wait_for = max(
                            0.0,
                            min(i.deadline for i in running.values())
                            - time.monotonic(),
                        )
                    finished, __ = wait(
                        set(running), timeout=wait_for,
                        return_when=FIRST_COMPLETED,
                    )
                    if not finished:
                        # A deadline expired with nothing completing:
                        # the worker is hung.  Its process cannot be
                        # recovered individually, so charge the timed-out
                        # cells an attempt, requeue the innocent
                        # bystanders untouched, and abandon the pool.
                        now = time.monotonic()
                        expired = [
                            fut for fut, item in running.items()
                            if item.deadline is not None
                            and item.deadline <= now
                        ]
                        if not expired:
                            continue
                        for fut in expired:
                            item = running.pop(fut)
                            sched._c_timeouts.inc()
                            tb = (
                                f"TimeoutError: cell exceeded --timeout "
                                f"{sched.timeout}s "
                                f"(attempt {item.attempt + 1}); "
                                "hung worker terminated"
                            )
                            done = sched._fail_or_requeue(
                                item, "TimeoutError", tb, queue,
                                results, done, total,
                            )
                        for item in running.values():
                            queue.append(item)
                        sched._c_pool_breaks.inc()
                        abandon = True
                        break
                    for fut in finished:
                        item = running.pop(fut)
                        try:
                            out = fut.result()
                        except BrokenExecutor:
                            # A worker died; every in-flight future of
                            # this pool fails with it and the victims are
                            # indistinguishable, so each is charged one
                            # attempt.  Rebuild the pool afterwards.
                            if not broken:
                                sched._c_pool_breaks.inc()
                                broken = True
                            done = sched._fail_or_requeue(
                                item, "BrokenProcessPool",
                                traceback.format_exc(), queue,
                                results, done, total,
                            )
                            continue
                        except Exception as exc:
                            # The payload failed to unpickle (or another
                            # local fault); isolate it as a failed
                            # attempt of this cell only.
                            done = sched._fail_or_requeue(
                                item, type(exc).__name__,
                                traceback.format_exc(), queue,
                                results, done, total,
                            )
                            continue
                        if out[0] == "ok":
                            done += 1
                            results[item.spec] = sched._finish(
                                CellResult(item.spec, out[1],
                                           attempts=item.attempt + 1),
                                done, total,
                            )
                        else:
                            done = sched._fail_or_requeue(
                                item, out[1], out[2], queue,
                                results, done, total,
                            )
                    # Waiting cells (and retries requeued above) go to
                    # the current pool while it is healthy.
                    refill()
                    if broken:
                        for item in running.values():
                            queue.append(item)
                        abandon = True
                        break
            except BaseException:
                # KeyboardInterrupt (or any unexpected error) must not
                # leave orphaned workers: cancel pending futures and
                # tear the pool down before propagating.
                self._abandon_pool(pool)
                raise
            else:
                if abandon:
                    self._abandon_pool(pool)
                else:
                    pool.shutdown(wait=True)
        return done


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def _load_service_backend() -> None:
    # Importing the module registers the "service" backend; deferred so
    # plain serial/pooled sweeps never pay the asyncio import.
    from . import service  # noqa: F401


BACKENDS: Registry[type[WorkerBackend]] = Registry(
    "worker backend", BackendError, loader=_load_service_backend
)
BACKENDS.register("serial", SerialBackend)
BACKENDS.register("process", ProcessPoolBackend)
BACKENDS.register("process-pool", ProcessPoolBackend)


__all__ = [
    "BACKENDS",
    "BackendError",
    "ProcessPoolBackend",
    "SerialBackend",
    "WorkerBackend",
    "config_id",
    "detect_cpus",
    "dispatch_tables",
]
