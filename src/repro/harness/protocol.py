"""``repro.job/1`` — the versioned wire protocol of the sweep service.

Framing is newline-delimited JSON over a local stream socket (one
message per line, UTF-8), the same shape as the ``repro.journal/1``
checkpoint file: trivially inspectable with ``tail -f`` and immune to
partial-read ambiguity.  Every message carries ``{"v": "repro.job/1",
"type": ...}``; both sides reject a version they do not speak instead
of guessing.

Message types (client = ``repro submit`` / the ``service`` backend,
server = one ``repro serve`` worker pool):

========== ====== =====================================================
type       dir    meaning
========== ====== =====================================================
hello      s → c  pool identity: name, worker count, protocol version
config     c → s  register one MachineConfig dict under its content id
submit     c → s  one cell as a job: compact payload (config by
                  reference), attempt number, per-cell timeout, lease
                  TTL, worker-fault text, optional service-fault
                  directive
lease      s → c  the job was accepted; its lease must now be kept
                  alive by heartbeats
heartbeat  s → c  periodic liveness for every job the pool holds
progress   s → c  a job started running (streamed narration)
result     s → c  terminal outcome: ``ok`` with the serialized result,
                  or ``error`` with kind + traceback
========== ====== =====================================================

Job ids are ``<spec-key>:<attempt>`` — the content-addressed cache key
plus the attempt ordinal — so a retry is a *different* job and a stale
result from a previous attempt can never satisfy it (the client counts
such arrivals as duplicates and drops them).

Results cross the wire in their artifact forms: ``sim`` cells as
``SimResult.to_dict()`` documents, ``table1`` cells as plain row dicts
— exactly what the journal and result cache already persist.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..cpu.stats import SimResult
from ..errors import ReproError

#: Protocol version tag carried by every message (alongside
#: ``repro.journal/1`` for the checkpoint file and
#: ``repro.sim_result/1`` for cache entries).
PROTOCOL = "repro.job/1"

#: Hard cap on one encoded message line.  A submit is a few hundred
#: bytes and a result a few KB; the cap only guards against a confused
#: peer streaming garbage into memory.
MAX_LINE = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed or version-incompatible ``repro.job/1`` message."""


def job_id(spec_key: str, attempt: int) -> str:
    return f"{spec_key}:{attempt}"


def message(type_: str, **fields: Any) -> dict[str, Any]:
    return {"v": PROTOCOL, "type": type_, **fields}


def encode(msg: dict[str, Any]) -> bytes:
    return json.dumps(msg, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict[str, Any]:
    try:
        msg = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from None
    if not isinstance(msg, dict) or "type" not in msg:
        raise ProtocolError(f"message is not a typed object: {line[:80]!r}")
    if msg.get("v") != PROTOCOL:
        raise ProtocolError(
            f"protocol mismatch: peer speaks {msg.get('v')!r}, "
            f"this side speaks {PROTOCOL!r}"
        )
    return msg


# ----------------------------------------------------------------------
# Result payload serde (shared with journal/cache artifact forms)
# ----------------------------------------------------------------------

def encode_result(kind: str, result: Any) -> Any:
    """Wire form of one ok result (``SimResult`` document or row dict)."""
    if kind == "sim":
        return result.to_dict()
    return result


def decode_result(kind: str, data: Any) -> Any:
    if kind == "sim":
        return SimResult.from_dict(data)
    if not isinstance(data, dict):
        raise ProtocolError(f"non-dict {kind!r} result payload")
    return data


# ----------------------------------------------------------------------
# Blocking-socket line channel (the client side)
# ----------------------------------------------------------------------

class ChannelClosed(ProtocolError):
    """The peer closed the connection (pool death, mid-line cut)."""


class LineChannel:
    """Line-framed message channel over a non-blocking socket.

    The client multiplexes several pool connections through a
    ``selectors`` loop; this wrapper owns the per-connection receive
    buffer and decodes complete lines as they arrive."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = b""
        sock.setblocking(False)

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, msg: dict[str, Any]) -> None:
        """Send one message (blocking until fully written)."""
        data = encode(msg)
        self.sock.setblocking(True)
        try:
            self.sock.sendall(data)
        finally:
            self.sock.setblocking(False)

    def receive(self) -> list[dict[str, Any]]:
        """Drain whatever the socket holds; returns the complete
        messages received.  Raises :class:`ChannelClosed` on EOF."""
        closed = False
        while True:
            try:
                chunk = self.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                raise ChannelClosed(f"connection lost: {exc}") from None
            if not chunk:
                closed = True
                break
            self._buf += chunk
            if len(self._buf) > MAX_LINE:
                raise ProtocolError(
                    f"message line exceeds {MAX_LINE} bytes"
                )
        msgs = []
        while b"\n" in self._buf:
            line, self._buf = self._buf.split(b"\n", 1)
            if line.strip():
                msgs.append(decode(line))
        if closed and not msgs:
            # Buffered messages (if any) drain first; the next receive()
            # hits the EOF again and raises then.
            raise ChannelClosed("pool closed the connection")
        return msgs

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


__all__ = [
    "ChannelClosed",
    "LineChannel",
    "MAX_LINE",
    "PROTOCOL",
    "ProtocolError",
    "decode",
    "decode_result",
    "encode",
    "encode_result",
    "job_id",
    "message",
]
