"""Tournament reporting: rank every scheme across every workload.

The tournament spec (``examples/specs/tournament.toml``) crosses the
full scheme registry — the paper's four plus the zoo — against every
workload with telemetry attached, so each (scheme, workload) cell
carries its per-prefetch outcome partition.  This module turns those
per-cell rows into the ranked per-scheme summary: geometric-mean
normalized execution time (the figure-of-merit; lower is better),
aggregate timely/late/early-evicted/useless/dropped counts, and overall
prefetch accuracy.  ``repro tournament`` and ``repro run-spec`` (on a
telemetry spec with scheme rows) both print it.

Ranking is by geomean normalized time over the cells a scheme
*completed*; a scheme with any failed cell is ranked after every clean
scheme (partial wins don't beat finished races) and its error count is
shown.  The outcome totals obey the obs layer's conservation law per
cell — ``timely + late + early-evicted + useless == issued`` and the
``dropped`` column counts PRQ rejections — so the summary's totals do
too.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from ..obs.outcomes import OUTCOMES

#: Row columns the summary aggregates (must be present in the spec).
REQUIRED_COLUMNS = ("scheme", "normalized", "issued", *OUTCOMES)

#: Columns of the ranked summary table, in print order.
SUMMARY_COLUMNS = (
    "rank", "scheme", "geomean", "best", "worst", "cells", "errors",
    "issued", "timely", "late", "early-evicted", "useless", "dropped",
    "accuracy%",
)


def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def tournament_summary(
    rows: Sequence[Mapping[str, Any]], label_key: str = "scheme"
) -> list[dict[str, Any]]:
    """Rank schemes over per-cell spec rows.

    ``rows`` are ``run-spec`` matrix rows carrying ``normalized`` plus
    the outcome columns; error rows (no ``normalized``) count against
    their scheme's ``errors`` column.  Returns one row per scheme,
    ranked best (lowest geomean normalized time) first.
    """
    per_scheme: dict[str, dict[str, Any]] = {}
    for row in rows:
        scheme = row.get(label_key)
        if scheme is None:
            continue
        agg = per_scheme.setdefault(str(scheme), {
            "normalized": [], "errors": 0, "issued": 0,
            **{o: 0 for o in OUTCOMES},
        })
        norm = row.get("normalized")
        if not isinstance(norm, (int, float)) or norm <= 0:
            agg["errors"] += 1
            continue
        agg["normalized"].append(float(norm))
        agg["issued"] += int(row.get("issued", 0) or 0)
        for outcome in OUTCOMES:
            agg[outcome] += int(row.get(outcome, 0) or 0)

    summary = []
    for scheme, agg in per_scheme.items():
        norms = agg["normalized"]
        issued = agg["issued"]
        summary.append({
            "scheme": scheme,
            "geomean": round(_geomean(norms), 3) if norms else None,
            "best": round(min(norms), 3) if norms else None,
            "worst": round(max(norms), 3) if norms else None,
            "cells": len(norms),
            "errors": agg["errors"],
            "issued": issued,
            **{o: agg[o] for o in OUTCOMES},
            "accuracy%": (
                round(100 * agg["timely"] / issued, 1) if issued else 0.0
            ),
        })
    # Clean schemes first, then by geomean; error-struck schemes sort
    # after every clean one (a partial race is not a win), ties broken
    # by name for determinism.
    summary.sort(key=lambda r: (
        r["errors"] > 0,
        r["geomean"] if r["geomean"] is not None else math.inf,
        r["scheme"],
    ))
    for rank, row in enumerate(summary, start=1):
        row["rank"] = rank
    return [
        {col: row.get(col) for col in SUMMARY_COLUMNS} for row in summary
    ]


def is_tournament_spec(spec) -> bool:
    """True when a spec's rows can feed :func:`tournament_summary`:
    telemetry-attached matrix rows labeled by scheme, with the
    normalized and outcome columns present."""
    return (
        spec.kind == "matrix"
        and spec.telemetry
        and spec.label_key == "scheme"
        and all(c in spec.columns for c in ("normalized", "issued"))
        and all(o in spec.columns for o in OUTCOMES)
    )


__all__ = [
    "REQUIRED_COLUMNS",
    "SUMMARY_COLUMNS",
    "is_tournament_spec",
    "tournament_summary",
]
