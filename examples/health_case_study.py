#!/usr/bin/env python3
"""The paper's running example: `health` and the four prefetching idioms.

Section 2 of the paper develops jump-pointer prefetching around the
`check_patients_waiting` loop of Olden health (Figure 2): a hospital's
waiting list is a backbone of list nodes whose ribs are patient records.
This example reproduces the idiom comparison on that program:

* queue jumping  — jump-pointers to the list node I hops ahead only;
* full jumping   — jump-pointers to the future node AND its patient;
* chain jumping  — jump-pointer to the node, patient chained through it;
* root jumping   — one pointer to the next hospital's list root.

Run:  python examples/health_case_study.py
"""

from repro import bench_config
from repro.harness import BenchmarkRunner, format_table, normalized_bar


def main() -> None:
    cfg = bench_config()
    runner = BenchmarkRunner("health", cfg)
    base = runner.run("base")

    rows = [{
        "config": "unoptimized",
        "normalized": 1.0,
        "compute": base.compute,
        "memory": base.memory,
        "bar": normalized_bar(1.0),
    }]
    for impl, engine in (("sw", "software"), ("coop", "cooperative")):
        for idiom in ("queue", "full", "chain", "root"):
            run = runner.run_variant(f"{impl}:{idiom}", engine)
            n = run.normalized(base.total)
            rows.append({
                "config": f"{impl}:{idiom}",
                "normalized": round(n, 3),
                "compute": run.compute,
                "memory": run.memory,
                "bar": normalized_bar(n),
            })
    for scheme in ("hardware", "dbp"):
        run = runner.run(scheme)
        n = run.normalized(base.total)
        rows.append({
            "config": scheme,
            "normalized": round(n, 3),
            "compute": run.compute,
            "memory": run.memory,
            "bar": normalized_bar(n),
        })

    print(format_table(rows, "health: idioms and implementations "
                             "(normalized execution time; # = time)"))
    print()
    print("What to look for (paper Sections 2.2 and 4.1):")
    print(" * queue jumping prefetches only the backbone; the patient-record")
    print("   ribs still miss, so it barely helps.")
    print(" * full and chain jumping cover the ribs too and win big; chain")
    print("   gets there with half the jump-pointer storage.")
    print(" * the lists are too long for root jumping to keep up.")
    print(" * the cooperative versions shed the software chained-prefetch")
    print("   serialization; hardware JPP needs no code changes at all.")


if __name__ == "__main__":
    main()
