#!/usr/bin/env python3
"""Quickstart: write a mini-ISA program, run it on the simulated machine,
and see what jump-pointer prefetching does to a pointer-chasing loop.

The program builds a 512-node linked list and walks it four times.  We
run it unoptimized, then under hardware jump-pointer prefetching and
dependence-based prefetching, and print the execution-time decomposition
the paper uses (compute time vs. memory stall time).

Run:  python examples/quickstart.py
"""

from repro import Assembler, bench_config, simulate, simulate_decomposed
from repro.isa.registers import A0, T0, T1, T2, ZERO


def build_program(n_nodes: int = 2048, walks: int = 4):
    """An n-node list ({value@0, next@4}, 12-byte allocations so the
    16-byte size class leaves a padding word for hardware jump-pointers),
    walked `walks` times."""
    a = Assembler()
    result = a.word(0)
    head = a.word(0)

    a.label("main")
    a.li(T0, n_nodes)
    a.label("build")
    a.beqz(T0, "walks")
    a.alloc(T1, ZERO, 12)          # {value, next} + padding word
    a.sw(T0, T1, 0)                # value = T0
    a.li(A0, head)
    a.lw(T2, A0, 0)
    a.sw(T2, T1, 4)                # next = old head
    a.sw(T1, A0, 0)                # head = node
    a.addi(T0, T0, -1)
    a.j("build")

    a.label("walks")
    for w in range(walks):
        a.li(T0, 0)
        a.li(A0, head)
        a.lw(T1, A0, 0, tag="lds")
        a.label(f"loop{w}")
        a.beqz(T1, f"done{w}")
        a.lw(T2, T1, 0, pad=16, tag="lds")   # value (annotated load)
        a.add(T0, T0, T2)
        a.lw(T1, T1, 4, pad=16, tag="lds")   # next  (the pointer chase)
        a.j(f"loop{w}")
        a.label(f"done{w}")
    a.li(A0, result)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("quickstart"), result, n_nodes * (n_nodes + 1) // 2


def main() -> None:
    program, result_addr, expected = build_program()
    cfg = bench_config()

    print(f"{'scheme':12s} {'cycles':>9s} {'compute':>9s} {'memory':>9s} "
          f"{'speedup':>8s}  prefetches(useful/issued)")
    base_total = None
    for engine in ("none", "dbp", "hardware"):
        real, dec = simulate_decomposed(program, cfg, engine=engine)
        if base_total is None:
            base_total = dec.total
        h = real.hierarchy
        print(
            f"{engine:12s} {dec.total:9d} {dec.compute:9d} {dec.memory:9d} "
            f"{base_total / dec.total:7.2f}x  {h.prefetches_useful}/{h.prefetches_issued}"
        )

    # functional sanity: the walk really computed the right sum
    from repro import run_to_completion

    interp = run_to_completion(program)
    got = interp.memory.load(result_addr)
    assert got == expected, f"sum {got} != {expected}"
    print(f"\nfunctional check OK: each walk sums to {expected}")
    print("note how hardware JPP spends the first walk learning/installing "
          "jump-pointers,\nthen prefetches the remaining walks "
          "(Section 4.2 of the paper).")


if __name__ == "__main__":
    main()
