#!/usr/bin/env python3
"""Figure 7 in miniature: what happens as memory gets (relatively) slower.

The paper's Section 4.4 argument: scheduling-based prefetching (DBP)
"compresses but cannot flatten the memory dependence graph" — as the
processor/memory gap grows, its benefit evaporates, while jump-pointer
prefetching keeps generating addresses early enough.  This example sweeps
main-memory latency on `health` and prints each scheme's memory-stall
reduction at every point.

Run:  python examples/latency_scaling.py
"""

from repro import bench_config
from repro.harness import BenchmarkRunner, format_table


def main() -> None:
    base_cfg = bench_config()
    rows = []
    for latency in (35, 70, 140, 280):
        cfg = base_cfg.with_memory_latency(latency)
        runner = BenchmarkRunner("health", cfg)
        base = runner.run("base")
        row = {"mem latency": latency, "base cycles": base.total}
        for scheme in ("software", "hardware", "dbp"):
            run = runner.run(scheme)
            row[f"{scheme} stall cut%"] = round(
                100 * run.memory_reduction(base.memory), 1
            )
        rows.append(row)

    print(format_table(rows, "health: memory-stall reduction vs memory latency"))
    print()
    dbp_cuts = [r["dbp stall cut%"] for r in rows]
    sw_cuts = [r["software stall cut%"] for r in rows]
    print(f"DBP's stall reduction goes {dbp_cuts[0]}% -> {dbp_cuts[-1]}% as "
          f"latency grows 8x;")
    print(f"software JPP's goes {sw_cuts[0]}% -> {sw_cuts[-1]}% — jump-pointers")
    print("keep breaking the serial address-generation chain (Section 4.4).")


if __name__ == "__main__":
    main()
