#!/usr/bin/env python3
"""Extending the framework: apply queue jumping to your own kernel.

This example writes a new pointer-chasing kernel from scratch against the
public API — a skip-list-style search over a sorted linked list — and
instruments it with the software jump-queue (the paper's queue method),
then measures baseline vs software JPP vs hardware JPP.

It shows everything a new workload needs:
  1. lay out nodes so the size-class allocator leaves padding (for the
     hardware variant) or an explicit jump-pointer field (software);
  2. install jump-pointers with `SoftwareJumpQueue` during creation;
  3. prefetch with a load+PF pair (software) at each visit;
  4. annotate LDS loads with `pad=` so hardware JPP can find its storage.

Run:  python examples/custom_workload.py
"""

from repro import Assembler, bench_config, run_to_completion, simulate_decomposed
from repro.core import SoftwareJumpQueue
from repro.isa.registers import A0, T0, T1, T2, T3, T4, T5, ZERO

N = 1024          # list nodes
SEARCHES = 40     # membership queries per run
INTERVAL = 8

OFF_KEY = 0
OFF_NEXT = 4
OFF_JP = 8        # software jump-pointer field (in the padding)


def build(software_jpp: bool):
    a = Assembler()
    found = a.word(0)
    head = a.word(0)
    queue = SoftwareJumpQueue(a, INTERVAL, "sq") if software_jpp else None

    # ---- build a sorted list (descending creation => ascending keys) ---
    a.label("main")
    a.li(T0, N)
    a.label("build")
    a.beqz(T0, "search_all")
    a.alloc(T1, ZERO, 12)          # {key, next} in the 16-byte class
    a.slli(T2, T0, 3)              # key = 8 * index
    a.sw(T2, T1, OFF_KEY)
    a.li(A0, head)
    a.lw(T2, A0, 0)
    a.sw(T2, T1, OFF_NEXT)
    a.sw(T1, A0, 0)
    if queue is not None:
        # creation order is the reverse of search order: install backward
        queue.update(T1, OFF_JP, T2, T3, T4, reverse=True)
    a.addi(T0, T0, -1)
    a.j("build")

    # ---- run SEARCHES membership queries -------------------------------
    a.label("search_all")
    a.li(T5, SEARCHES)
    a.li(T0, 0)                    # hits
    a.label("next_query")
    a.beqz(T5, "end")
    # query key: spread over the key space; odd queries miss (key-3)
    a.li(T1, 8 * (N // SEARCHES))
    a.mul(T1, T1, T5)
    a.andi(T2, T5, 1)
    a.beqz(T2, "present")
    a.addi(T1, T1, -3)             # absent key (not a multiple of 8)
    a.label("present")
    a.li(A0, head)
    a.lw(T2, A0, 0, tag="lds")
    a.label("walk")
    a.beqz(T2, "miss")
    if software_jpp:
        a.lw(T4, T2, OFF_JP, tag="lds")
        a.pf(T4, 0)
    a.lw(T3, T2, OFF_KEY, pad=16, tag="lds")
    a.bge(T3, T1, "check")
    a.lw(T2, T2, OFF_NEXT, pad=16, tag="lds")
    a.j("walk")
    a.label("check")
    a.bne(T3, T1, "miss")
    a.addi(T0, T0, 1)
    a.label("miss")
    a.addi(T5, T5, -1)
    a.j("next_query")
    a.label("end")
    a.li(A0, found)
    a.sw(T0, A0, 0)
    a.halt()
    return a.assemble("skipsearch"), found


def main() -> None:
    cfg = bench_config()
    base_prog, found_addr = build(software_jpp=False)
    sw_prog, __ = build(software_jpp=True)

    # functional sanity first
    interp = run_to_completion(base_prog)
    print(f"queries found {interp.memory.load(found_addr)} of {SEARCHES} keys")

    rows = []
    for name, prog, engine in (
        ("baseline", base_prog, "none"),
        ("software JPP", sw_prog, "software"),
        ("hardware JPP", base_prog, "hardware"),
    ):
        real, dec = simulate_decomposed(prog, cfg, engine=engine)
        rows.append((name, dec.total, dec.compute, dec.memory))

    base_total = rows[0][1]
    print(f"\n{'scheme':14s} {'cycles':>9s} {'compute':>9s} {'memory':>9s} {'vs base':>8s}")
    for name, total, compute, memory in rows:
        print(f"{name:14s} {total:9d} {compute:9d} {memory:9d} {total/base_total:7.2f}x")
    print("\nEvery search rescans the list from the head, so the structure is")
    print("traversed many times: hardware JPP installs jump-pointers during")
    print("the first searches and prefetches the rest — no code changes.")


if __name__ == "__main__":
    main()
