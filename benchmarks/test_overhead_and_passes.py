"""Section 4.2 ablations — jump-pointer creation overhead and the
traversal-count sensitivity of hardware JPP.

Expected shapes:
* jump-pointer creation imposes an a-priori compute slowdown on the
  software implementations (paper: ~12% for health's chain jumping);
* hardware JPP spends the first traversal installing jump-pointers: with
  one pass it gains ~nothing, and its benefit grows with the number of
  passes (treeadd's four passes forfeit a quarter of the savings).
"""

from conftest import run_once

from repro import bench_config
from repro.harness import creation_overhead, format_table, traversal_count_sweep


def test_creation_overhead(benchmark):
    rows = run_once(benchmark, creation_overhead, bench_config())
    print()
    print(format_table(rows, "A-priori jump-pointer creation overhead"))
    for row in rows:
        assert 0 < row["creation overhead%"] < 60, row["benchmark"]


def test_traversal_count_sweep(benchmark):
    rows = run_once(benchmark, traversal_count_sweep, bench_config())
    print()
    print(format_table(rows, "treeadd: hardware vs cooperative/DBP by pass count"))
    by_passes = {r["passes"]: r for r in rows}
    # single pass: hardware's jump-pointers add nothing over its DBP half
    assert by_passes[1]["hardware"] >= by_passes[1]["dbp"] - 0.03
    # with more passes the jump-pointers kick in: hardware pulls ahead of
    # DBP and improves in absolute terms
    assert by_passes[8]["hardware"] < by_passes[8]["dbp"] - 0.01
    assert by_passes[8]["hardware"] < by_passes[1]["hardware"] - 0.05
    # cooperative optimizes the first pass too: ahead of hardware at 1 pass
    assert by_passes[1]["cooperative"] < by_passes[1]["hardware"]
