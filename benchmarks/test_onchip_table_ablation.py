"""Section 3.3 ablation — on-chip jump-pointer table vs allocator padding.

The paper: "with the exception of em3d, which has only 4000 nodes in its
backbone data structure, most benchmarks experience negligible speedups
from a 16K-entry on-chip jump-pointer cache" — the scalable padding
storage is the winning design.  At our scaled sizes, the structures fit
comfortably, so the on-chip table matches padding storage on the small
backbone (em3d) and a *small* table (capacity pressure) loses on the
larger ones.
"""

from conftest import run_once

from repro import bench_config
from repro.harness import format_table, onchip_table_ablation


def test_onchip_ablation(benchmark):
    def run():
        big = onchip_table_ablation(
            bench_config(), benchmarks=("em3d", "health", "treeadd"),
            table_entries=16384,
        )
        small = onchip_table_ablation(
            bench_config(), benchmarks=("health", "treeadd"), table_entries=64
        )
        return big, small

    big, small = run_once(benchmark, run)
    print()
    print(format_table(big, "On-chip table (16K entries) vs padding storage"))
    print()
    print(format_table(small, "Undersized on-chip table (64 entries)"))

    # a big enough table tracks padding storage closely
    for row in big:
        padding = row["hw (padding)"]
        onchip = row["hw (on-chip 16384)"]
        assert abs(onchip - padding) < 0.15, row["benchmark"]

    # a severely undersized table thrashes and loses most of the benefit
    for row in small:
        padding = row["hw (padding)"]
        onchip = row["hw (on-chip 64)"]
        assert onchip >= padding - 0.05, row["benchmark"]
