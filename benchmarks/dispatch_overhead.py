"""Microbenchmark: per-cell dispatch overhead, monolithic vs layered path.

Run directly (also wired into CI)::

    python benchmarks/dispatch_overhead.py              # emit BENCH_PR9.json

Before the sweep-service refactor every dispatched cell crossed the
process boundary as a fully pickled :class:`RunSpec` — machine config
included — and the worker rebuilt its workload program from scratch.
The layered path ships a compact JSON ``repro.job/1`` payload with the
config *by reference* (its content id, registered once per worker), and
workers memoize both the materialized :class:`MachineConfig` and the
built program per ``(benchmark, params, variant)``.

This script measures both paths over the same cell population and
writes ``BENCH_PR9.json``:

1. **Wire cost** — bytes and encode+decode time per cell: pickled
   RunSpec (old) vs JSON payload plus the amortized one-time config
   registration (new).
2. **Worker setup cost** — per-cell config materialization and program
   build (old: every cell) vs the memoized path (new: once per distinct
   config / program, then dictionary hits).

The parity checks (payload round-trips to the identical RunSpec;
memoized program is the very object a fresh build produces cycles-wise)
are asserted unconditionally; the committed artifact pins the measured
ratios for ``repro bench-diff``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time

sys.path.insert(0, "src")

from repro import get_workload, small_config  # noqa: E402
from repro.config import MachineConfig  # noqa: E402
from repro.harness import small_params  # noqa: E402
from repro.harness.backends import (  # noqa: E402
    _init_pool_worker,
    _worker_config,
    _worker_program,
    dispatch_tables,
)
from repro.harness.cells import (  # noqa: E402
    RunSpec,
    job_payload,
    spec_from_payload,
)
from repro.workloads import workload_class  # noqa: E402

BENCHMARKS = ("treeadd", "em3d", "health")
REPS = 5


def _cells() -> list[RunSpec]:
    """A figure-5-shaped cell population: every variant of three
    benchmarks on the small machine, timing plus compute configs."""
    cfg = small_config()
    specs = []
    for bench in BENCHMARKS:
        params = small_params(bench)
        for variant in workload_class(bench).variants:
            specs.append(RunSpec.make(bench, variant, "none", cfg, params))
            specs.append(
                RunSpec.make(bench, variant, "none", cfg.perfect(), params)
            )
    return specs


def _best(fn, *args) -> float:
    best = float("inf")
    for __ in range(REPS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_PR9.json")
    args = ap.parse_args(argv)

    specs = _cells()
    n = len(specs)
    config_table, payloads = dispatch_tables(specs)

    # -- wire cost ----------------------------------------------------
    # Old: one pickled RunSpec per cell (the config rides inside every
    # single message).  New: one JSON payload per cell + each distinct
    # config dict sent once, amortized over the population.
    def old_wire() -> None:
        for spec in specs:
            pickle.loads(pickle.dumps(spec))

    def new_wire() -> None:
        for cid, data in config_table.items():
            json.loads(json.dumps({"id": cid, "data": data}))
        for spec in specs:
            json.loads(json.dumps(payloads[spec]))

    old_bytes = sum(len(pickle.dumps(s)) for s in specs)
    new_bytes = sum(
        len(json.dumps(payloads[s]).encode()) for s in specs
    ) + sum(
        len(json.dumps({"id": cid, "data": data}).encode())
        for cid, data in config_table.items()
    )
    t_old_wire = _best(old_wire)
    t_new_wire = _best(new_wire)

    # Parity: the compact payload must rebuild the identical cell.
    for spec in specs:
        cfg = MachineConfig.from_dict(config_table[payloads[spec]["config"]])
        assert spec_from_payload(payloads[spec], cfg) == spec, (
            f"payload round-trip changed {spec.describe()}"
        )

    # -- worker setup cost --------------------------------------------
    # Old: every dispatched cell materializes its config and builds its
    # program from the workload source.  New: both are per-worker
    # memoized — first touch pays, every later cell is a dict hit.
    def old_setup() -> None:
        for spec in specs:
            MachineConfig.from_dict(config_table[payloads[spec]["config"]])
            get_workload(spec.benchmark, **dict(spec.params)).build(
                spec.variant
            )

    _init_pool_worker(config_table, None)

    def new_setup() -> None:
        for spec in specs:
            _worker_config(payloads[spec]["config"])
            _worker_program(spec)

    t_old_setup = _best(old_setup)
    new_setup()  # warm the memos: steady-state is what a sweep sees
    t_new_setup = _best(new_setup)

    us = 1e6 / n
    report = {
        "schema": "repro.bench_pr9/1",
        "cells": n,
        "distinct_configs": len(config_table),
        "wire": {
            "old_bytes_per_cell": round(old_bytes / n),
            "new_bytes_per_cell": round(new_bytes / n),
            "bytes_ratio": round(old_bytes / new_bytes, 2),
            "old_us_per_cell": round(t_old_wire * us, 1),
            "new_us_per_cell": round(t_new_wire * us, 1),
            "speedup": round(t_old_wire / t_new_wire, 2),
        },
        "worker_setup": {
            "old_us_per_cell": round(t_old_setup * us, 1),
            "new_us_per_cell": round(t_new_setup * us, 1),
            "speedup": round(t_old_setup / t_new_setup, 2),
        },
        "dispatch": {
            "old_us_per_cell": round((t_old_wire + t_old_setup) * us, 1),
            "new_us_per_cell": round((t_new_wire + t_new_setup) * us, 1),
            "speedup": round(
                (t_old_wire + t_old_setup) / (t_new_wire + t_new_setup), 2
            ),
        },
    }

    print(f"{n} cells, {len(config_table)} distinct configs")
    print(f"wire:   {report['wire']['old_us_per_cell']}us -> "
          f"{report['wire']['new_us_per_cell']}us per cell "
          f"({report['wire']['speedup']}x), "
          f"{report['wire']['old_bytes_per_cell']}B -> "
          f"{report['wire']['new_bytes_per_cell']}B "
          f"({report['wire']['bytes_ratio']}x smaller)")
    print(f"setup:  {report['worker_setup']['old_us_per_cell']}us -> "
          f"{report['worker_setup']['new_us_per_cell']}us per cell "
          f"({report['worker_setup']['speedup']}x)")
    print(f"total:  {report['dispatch']['old_us_per_cell']}us -> "
          f"{report['dispatch']['new_us_per_cell']}us per cell "
          f"({report['dispatch']['speedup']}x)")

    assert report["dispatch"]["speedup"] > 1.0, (
        "layered dispatch is not cheaper than the monolithic path"
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
