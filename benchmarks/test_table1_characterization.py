"""Table 1 — benchmark characterization.

Reproduces: dynamic instruction counts, the fraction of loads that are
LDS loads, L1 miss ratios, the share of misses due to LDS loads, the
average number of in-flight L1 misses (memory parallelism), the memory
fraction of execution time, and each program's structure/idiom call.

Expected shapes (paper Section 2.3 / Table 1):
* power, voronoi, tsp have very small memory components;
* the pointer-intensive programs (em3d, health, mst, treeadd, perimeter,
  bisort) are dominated by LDS misses;
* miss parallelism is low (serial pointer chasing) except where sibling
  accesses are independent (em3d's from-arrays, tsp's scan).
"""

from conftest import run_once

from repro import bench_config
from repro.harness import format_table, table1


def test_table1(benchmark):
    rows = run_once(benchmark, table1, bench_config())
    print()
    print(format_table(rows, "Table 1 — benchmark characterization"))

    by_name = {r["benchmark"]: r for r in rows}
    assert len(rows) == 10

    # compute-bound programs have small memory fractions
    for name in ("power", "voronoi", "tsp"):
        assert by_name[name]["mem frac%"] < 25, name
    # memory-bound programs have large ones
    for name in ("em3d", "health", "mst", "treeadd", "perimeter"):
        assert by_name[name]["mem frac%"] > 50, name
    # LDS loads dominate the misses of the pointer-intensive programs
    for name in ("em3d", "health", "mst", "treeadd", "perimeter", "bisort"):
        assert by_name[name]["%misses lds"] > 90, name
