"""Checkpoint-resume drill: kill a sweep mid-flight, finish it with --resume.

Run directly (also wired into CI)::

    python benchmarks/resume_drill.py           # test-size drill, serial
    python benchmarks/resume_drill.py --jobs 2  # drill the pooled path too
    python benchmarks/resume_drill.py --service # two-pool sweep-service drill

The drill:

1. Runs a clean figure-5 sweep over two benchmarks to get reference rows.
2. Reruns it with a checkpoint journal and a progress hook that raises
   ``KeyboardInterrupt`` once roughly half the cells have finished —
   simulating an operator hitting Ctrl-C (or the box dying) mid-sweep.
3. Resumes from the journal with a fresh executor and asserts, via the
   obs metric registry, that every checkpointed cell was **replayed**
   (zero re-simulation) and only the unfinished remainder was executed.
4. Asserts the resumed sweep's assembled rows are bit-identical to the
   clean reference.

With ``--service`` the same contract is drilled across *pools* instead
of processes: pool A (an in-thread ``repro serve``) serves the sweep
until it is killed at roughly 50%, then pool B finishes the remainder
from the journal — every checkpointed cell replayed, zero recomputed.

Exit status 0 means the checkpoint-resume contract holds.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import small_config                              # noqa: E402
from repro.harness import SweepExecutor, SweepJournal, figure5  # noqa: E402
from repro.obs import MetricRegistry                        # noqa: E402
from repro.workloads import workload_class                  # noqa: E402

BENCHMARKS = ("treeadd", "power")
#: 2 benchmarks x (5 timing + 3 distinct compute) cells.
TOTAL_CELLS = 16


class InterruptMidway:
    """Progress hook that raises KeyboardInterrupt after ``n`` cells."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def __call__(self, line: str) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


def drill(jobs: int, kill_after: int, verbose: bool) -> None:
    cfg = small_config()
    params = {name: workload_class(name).test_params() for name in BENCHMARKS}
    say = print if verbose else (lambda *a, **k: None)

    say(f"reference sweep ({len(BENCHMARKS)} benchmarks, jobs={jobs}) ...")
    reference = figure5(cfg, benchmarks=BENCHMARKS, params=params,
                        executor=SweepExecutor(jobs=jobs))

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "drill.jsonl"

        say(f"interrupted sweep: Ctrl-C after {kill_after} cells ...")
        registry = MetricRegistry()
        journal = SweepJournal(journal_path, registry=registry)
        executor = SweepExecutor(jobs=jobs, journal=journal,
                                 registry=registry,
                                 progress=InterruptMidway(kill_after))
        try:
            figure5(cfg, benchmarks=BENCHMARKS, params=params,
                    executor=executor)
        except KeyboardInterrupt:
            pass
        else:
            raise SystemExit("drill broken: the interrupt never fired")
        finally:
            journal.close()

        checkpointed = len(SweepJournal(journal_path, resume=True))
        say(f"journal holds {checkpointed} checkpointed cells")
        if not 0 < checkpointed < TOTAL_CELLS:
            raise SystemExit(
                f"drill needs a partial journal to prove anything, got "
                f"{checkpointed}/{TOTAL_CELLS} cells"
            )

        say("resuming from the journal ...")
        registry = MetricRegistry()
        journal = SweepJournal(journal_path, registry=registry, resume=True)
        executor = SweepExecutor(jobs=jobs, journal=journal,
                                 registry=registry)
        resumed = figure5(cfg, benchmarks=BENCHMARKS, params=params,
                          executor=executor)
        journal.close()

        jstats, xstats = journal.stats(), executor.stats()
        say(f"  {journal.describe()}")
        say(f"  {executor.describe()}")
        assert jstats["replayed"] == checkpointed, (
            f"expected all {checkpointed} checkpointed cells replayed, "
            f"got {jstats['replayed']}"
        )
        assert xstats["executed"] == TOTAL_CELLS - checkpointed, (
            f"resume recomputed checkpointed work: executed "
            f"{xstats['executed']}, wanted {TOTAL_CELLS - checkpointed}"
        )
        assert xstats["failures"] == 0 and xstats["retries"] == 0

        assert resumed == reference, (
            "resumed sweep rows diverged from the clean reference"
        )

    print(
        f"resume drill OK (jobs={jobs}): {checkpointed} cells replayed "
        f"from the journal, {TOTAL_CELLS - checkpointed} re-simulated, "
        f"rows bit-identical to the clean run"
    )


class _ServicePool:
    """One in-thread ``repro serve`` pool on a short-path Unix socket."""

    def __init__(self, name: str) -> None:
        from repro.harness.service import SweepService

        # Unix socket paths are capped around 107 bytes: keep it short.
        self.dir = tempfile.mkdtemp(prefix="repro-svc-", dir="/tmp")
        self.path = os.path.join(self.dir, "p.sock")
        self.svc = SweepService(self.path, 2, name=name)
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.svc.serve_forever, args=(ready.set,), daemon=True
        )
        self.thread.start()
        if not ready.wait(10):
            raise SystemExit(f"drill pool {name!r} failed to start")

    def kill(self) -> None:
        """Idempotent: killing a dead pool is a no-op."""
        self.svc.stop()
        self.thread.join(timeout=10)
        shutil.rmtree(self.dir, ignore_errors=True)


def service_drill(kill_after: int, verbose: bool) -> None:
    """Two-pool sweep-service drill: pool A dies at ~50% of the sweep,
    pool B finishes it from the journal with zero recomputed cells."""
    cfg = small_config()
    params = {name: workload_class(name).test_params() for name in BENCHMARKS}
    say = print if verbose else (lambda *a, **k: None)

    say(f"reference sweep ({len(BENCHMARKS)} benchmarks, serial) ...")
    reference = figure5(cfg, benchmarks=BENCHMARKS, params=params,
                        executor=SweepExecutor(jobs=1))

    pool_a = _ServicePool("drill-a")
    pool_b = _ServicePool("drill-b")
    try:
        with tempfile.TemporaryDirectory() as tmp:
            journal_path = Path(tmp) / "drill.jsonl"

            say(f"sweep on pool A, killed after {kill_after} cells ...")
            registry = MetricRegistry()
            journal = SweepJournal(journal_path, registry=registry)
            executor = SweepExecutor(
                backend="service", pools=[pool_a.path],
                journal=journal, registry=registry,
                progress=InterruptMidway(kill_after),
            )
            try:
                figure5(cfg, benchmarks=BENCHMARKS, params=params,
                        executor=executor)
            except KeyboardInterrupt:
                pass
            else:
                raise SystemExit("drill broken: the interrupt never fired")
            finally:
                journal.close()
            # The box hosting pool A is gone, not just the submitting
            # client: the second pool starts from the journal alone.
            pool_a.kill()

            checkpointed = len(SweepJournal(journal_path, resume=True))
            say(f"journal holds {checkpointed} checkpointed cells")
            if not 0 < checkpointed < TOTAL_CELLS:
                raise SystemExit(
                    f"drill needs a partial journal to prove anything, got "
                    f"{checkpointed}/{TOTAL_CELLS} cells"
                )

            say("pool B finishes the sweep from the journal ...")
            registry = MetricRegistry()
            journal = SweepJournal(journal_path, registry=registry,
                                   resume=True)
            executor = SweepExecutor(backend="service", pools=[pool_b.path],
                                     journal=journal, registry=registry)
            resumed = figure5(cfg, benchmarks=BENCHMARKS, params=params,
                              executor=executor)
            journal.close()

            jstats, xstats = journal.stats(), executor.stats()
            say(f"  {journal.describe()}")
            say(f"  {executor.describe()}")
            assert jstats["replayed"] == checkpointed, (
                f"expected all {checkpointed} checkpointed cells replayed, "
                f"got {jstats['replayed']}"
            )
            assert xstats["executed"] == TOTAL_CELLS - checkpointed, (
                f"pool B recomputed checkpointed work: executed "
                f"{xstats['executed']}, wanted {TOTAL_CELLS - checkpointed}"
            )
            assert xstats["failures"] == 0 and xstats["retries"] == 0
            assert pool_b.svc.stats()["completed"] == \
                TOTAL_CELLS - checkpointed

            assert resumed == reference, (
                "resumed sweep rows diverged from the clean reference"
            )
    finally:
        pool_a.kill()
        pool_b.kill()

    print(
        f"sweep-service drill OK: pool A died after {checkpointed} cells, "
        f"pool B replayed all of them from the journal and executed only "
        f"the remaining {TOTAL_CELLS - checkpointed} — zero recomputed "
        f"cells, rows bit-identical to the clean run"
    )


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes for every sweep (default 1)")
    ap.add_argument("--kill-after", type=int, default=TOTAL_CELLS // 2,
                    help="cells to finish before the simulated Ctrl-C "
                         f"(default {TOTAL_CELLS // 2})")
    ap.add_argument("--service", action="store_true",
                    help="drill the sweep service instead: pool A dies "
                         "at --kill-after cells, pool B finishes")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="only print the final verdict")
    args = ap.parse_args(argv)
    if args.service:
        service_drill(args.kill_after, verbose=not args.quiet)
    else:
        drill(args.jobs, args.kill_after, verbose=not args.quiet)


if __name__ == "__main__":
    main()
