"""Block-compile warmup cost and steady-state speedup per workload.

The ``compiled`` simulation engine pays a one-time cost per program: hot
basic blocks are discovered, their fused functional+timing source is
generated and ``compile()``d, and each block is ``exec``-bound into the
run's state.  This probe separates that warmup from the steady-state win::

    python benchmarks/compile_overhead.py            # bench-size, COMPILE_OVERHEAD.json
    python benchmarks/compile_overhead.py --quick    # test-size smoke run

Per workload it reports:

* ``table_seconds``    — best-of-N with the plain table engine (no JIT),
* ``cold_seconds``     — first compiled-engine run on a freshly built
  program (pays codegen + ``compile()`` for every hot block),
* ``warm_seconds``     — best-of-N re-runs of the *same* program object
  (code objects are memoized per program; only the per-run bind remains),
* ``compile_overhead_seconds`` — ``cold - warm``, the amortized-away cost,
* ``steady_speedup``   — ``table / warm``, the sustained win,
* ``blocks``           — fused blocks compiled for the program.

Cycle counts are asserted identical between engines on every run.  The
output is a ``repro.compile_overhead/1`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro import bench_config, get_workload, simulate, small_config  # noqa: E402
from repro.harness import small_params  # noqa: E402
from repro.isa.blockjit import jit_max_block, jit_threshold  # noqa: E402
from repro.obs import artifact  # noqa: E402

RUNS = (
    ("health", "hardware"),
    ("em3d", "hardware"),
    ("treeadd", "none"),
)
REPS = 3


def _fused_blocks(program) -> int:
    """Fused blocks compiled for ``program`` (via the decode memo)."""
    memo = getattr(program, "_decode_memo", None) or {}
    return sum(
        len(slot) for key, slot in memo.items()
        if isinstance(key, tuple) and key and key[0] == "fused"
    )


def _time(program, cfg, engine, sim_engine, reps=REPS):
    best = float("inf")
    result = None
    for __ in range(reps):
        t0 = time.perf_counter()
        result = simulate(program, cfg, engine=engine, sim_engine=sim_engine)
        best = min(best, time.perf_counter() - t0)
    return best, result


def probe(name: str, engine: str, cfg, params: dict | None) -> dict:
    build = lambda: get_workload(name, **(params or {})).build("baseline").program

    t_table, r_table = _time(build(), cfg, engine, "table")

    # Cold: one run on a fresh program — block discovery + codegen +
    # compile() all land inside this measurement.
    program = build()
    t_cold, r_cold = _time(program, cfg, engine, "compiled", reps=1)
    blocks = _fused_blocks(program)

    # Warm: same program object, so every block's code object is served
    # from the decode memo and only the per-run exec bind is paid.
    t_warm, r_warm = _time(program, cfg, engine, "compiled")

    for label, r in (("cold", r_cold), ("warm", r_warm)):
        assert r.cycles == r_table.cycles, (
            f"{name}/{engine}: {label} compiled run simulated {r.cycles} "
            f"cycles, table engine {r_table.cycles}"
        )
    return {
        "instructions": r_table.instructions,
        "cycles": r_table.cycles,
        "blocks": blocks,
        "table_seconds": round(t_table, 4),
        "cold_seconds": round(t_cold, 4),
        "warm_seconds": round(t_warm, 4),
        "compile_overhead_seconds": round(max(0.0, t_cold - t_warm), 4),
        "steady_speedup": round(t_table / max(t_warm, 1e-9), 2),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="test-size workloads (smoke run)")
    ap.add_argument("-o", "--output", default="COMPILE_OVERHEAD.json")
    args = ap.parse_args(argv)

    cfg = small_config() if args.quick else bench_config()
    runs = {}
    for name, engine in RUNS:
        params = small_params(name) if args.quick else None
        row = runs[f"{name}/{engine}"] = probe(name, engine, cfg, params)
        print(f"{name}/{engine}: {row['blocks']} blocks, "
              f"compile overhead {row['compile_overhead_seconds']}s, "
              f"steady {row['steady_speedup']}x vs table "
              f"(cold {row['cold_seconds']}s, warm {row['warm_seconds']}s)")

    doc = artifact("compile_overhead", {
        "quick": args.quick,
        "jit_threshold": jit_threshold(),
        "jit_max_block": jit_max_block(),
        "runs": runs,
    })
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
