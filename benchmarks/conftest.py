"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the
``bench_config`` machine scale and prints it (run with ``-s`` to see the
tables).  ``pytest-benchmark`` wraps each harness in a single-round
``pedantic`` call — the interesting output is the reproduced table, not
the wall-clock of the harness itself.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
