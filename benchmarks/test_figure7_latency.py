"""Figure 7 — tolerating longer latencies (health at 70 vs 280-cycle
memory, jump intervals 8 and 16).

Expected shapes (paper Section 4.4):
* a 4x memory latency increase slows the unoptimized program by ~2.5x
  (ours: the baseline total grows by well over 2x);
* serial prefetching (DBP) loses most of its effectiveness at the longer
  latency ("compresses but cannot flatten the memory dependence graph");
* jump-pointer prefetching remains effective as relative latency grows —
  its stall reduction declines far less than DBP's.
"""

from conftest import run_once

from repro import bench_config
from repro.harness import figure7, format_table


def test_figure7(benchmark):
    rows = run_once(benchmark, figure7, bench_config())
    print()
    print(format_table(rows, "Figure 7 — health under 70/280-cycle memory"))

    def get(latency, interval, scheme, field="normalized"):
        return next(
            r[field] for r in rows
            if r["latency"] == latency and r["interval"] == interval
            and r["scheme"] == scheme
        )

    # 4x latency slows the unoptimized program dramatically
    assert get(280, 8, "base", "total") > 2.0 * get(70, 8, "base", "total")

    # DBP's stall reduction collapses at long latency
    dbp_cut_70 = get(70, 8, "dbp", "mem_reduction%")
    dbp_cut_280 = get(280, 8, "dbp", "mem_reduction%")
    assert dbp_cut_280 < dbp_cut_70

    # JPP keeps a large share of its benefit
    sw_cut_70 = get(70, 8, "software", "mem_reduction%")
    sw_cut_280 = get(280, 8, "software", "mem_reduction%")
    assert sw_cut_280 > dbp_cut_280 + 10
    assert sw_cut_280 > 0.4 * sw_cut_70

    # at 280 cycles the longer interval helps software JPP
    assert get(280, 16, "software") <= get(280, 8, "software") + 0.02
