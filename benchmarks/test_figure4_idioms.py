"""Figure 4 — comparing prefetching idioms (software and cooperative).

Reproduces the per-benchmark idiom comparison for the programs with more
than one applicable idiom: health (queue/full/chain/root), mst
(queue/root) and em3d (queue).

Expected shapes (paper Section 4.1):
* health: chain/full jumping clearly beat queue jumping (queue covers only
  the backbone, leaving the patient-record ribs unprefetched); root
  jumping trails them (the lists are long);
* mst: root jumping wins big; queue jumping on the remaining-vertex list
  decays with the splices and never covers the bucket chains;
* em3d: explicit queue jumping on the backbone works in software.
"""

from conftest import run_once

from repro import bench_config
from repro.harness import figure4, format_table


def test_figure4(benchmark):
    rows = run_once(benchmark, figure4, bench_config())
    print()
    print(format_table(rows, "Figure 4 — idiom comparison (normalized time)"))

    def norm(bench, config):
        return next(
            r["normalized"] for r in rows
            if r["benchmark"] == bench and r["config"] == config
        )

    # health: chain and full beat queue; paper picks chain
    assert norm("health", "sw:chain") < norm("health", "sw:queue")
    assert norm("health", "sw:full") < norm("health", "sw:queue")
    assert norm("health", "sw:chain") < 1.0
    # health: the lists are too long for root jumping to win
    assert norm("health", "sw:chain") < norm("health", "sw:root")

    # mst: root jumping is the clear winner over queue jumping
    assert norm("mst", "sw:root") < norm("mst", "sw:queue")
    assert norm("mst", "sw:root") < 0.9
    assert norm("mst", "coop:root") < norm("mst", "coop:queue")

    # em3d: software queue jumping helps
    assert norm("em3d", "sw:queue") < 1.0
