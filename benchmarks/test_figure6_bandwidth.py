"""Figure 6 — bandwidth: bytes moved between the L1 and L2 data caches per
dynamic instruction of the original (baseline) program.

Expected shapes (paper Section 4.3):
* prefetching moves more bytes than the unoptimized program, but
  jump-pointer prefetching's overhead is modest;
* increasing software control over what is prefetched reduces waste:
  software <= cooperative <= hardware overheads on average (the hardware
  and DBP configurations prefetch rib structures greedily).
"""

from conftest import run_once

from repro import bench_config
from repro.harness import MEMORY_BOUND, figure6, format_table


def test_figure6(benchmark):
    rows = run_once(benchmark, figure6, bench_config())
    print()
    print(format_table(rows, "Figure 6 — L1<->L2 bytes per baseline instruction"))

    def get(bench, scheme):
        return next(
            r["bytes/inst"] for r in rows
            if r["benchmark"] == bench and r["scheme"] == scheme
        )

    def avg_overhead(scheme):
        vals = []
        for name in MEMORY_BOUND:
            base = get(name, "base")
            if base:
                vals.append(get(name, scheme) / base - 1.0)
        return sum(vals) / len(vals)

    sw, coop, hw, dbp = (
        avg_overhead(s) for s in ("software", "cooperative", "hardware", "dbp")
    )
    print(
        f"\naverage bandwidth overhead vs base: software {sw:+.1%}, "
        f"cooperative {coop:+.1%}, hardware {hw:+.1%}, dbp {dbp:+.1%}"
    )
    # prefetching costs bandwidth, within reason
    for name, overhead in (("software", sw), ("cooperative", coop), ("hardware", hw)):
        assert overhead > -0.2, name
        assert overhead < 1.0, name
    # more software control => less waste (paper: 3% / 6% / 35%)
    assert sw <= coop + 0.10
    assert sw <= hw + 0.10
