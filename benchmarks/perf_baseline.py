"""Performance baseline for the sweep executor / result cache / hot-loop PR.

Run directly (also wired into CI)::

    python benchmarks/perf_baseline.py                  # emit BENCH_PR2.json
    python benchmarks/perf_baseline.py --assert-speedup # enforce the targets
    python benchmarks/perf_baseline.py --quick          # test-size smoke run

Measures three things and writes them to ``BENCH_PR2.json``:

1. **Single-run speed** — wall-clock and simulated instructions/second for
   three representative simulations, against the frozen seed-revision
   timings in ``SEED_REFERENCE``.  Simulated cycle counts must be
   bit-identical to the seed's; the wall-clock speedup target is >= 1.3x
   (only asserted with ``--assert-speedup``, since absolute times are
   machine-dependent — the reference box is the one that produced the
   committed artifact).
2. **Sweep scaling** — one figure-5 style sweep executed serially and
   with ``--jobs 4``; rows must be identical, and the parallel wall-clock
   should approach 1/min(4, cells) of serial on an idle 4-core machine.
3. **Cache effectiveness** — the same sweep cold (empty cache) and warm;
   the warm run must serve every simulation from disk (zero misses) and
   reproduce the rows exactly.

All parity checks (cycles vs seed, serial vs parallel, cold vs warm) are
asserted unconditionally; only the speed *targets* hide behind
``--assert-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, "src")

from repro import bench_config, get_workload, simulate, small_config  # noqa: E402
from repro.harness import ResultCache, detect_cpus, figure5, small_params  # noqa: E402
from repro.isa.engines import default_sim_engine  # noqa: E402

#: Frozen measurements of the pre-PR revision (the PR-1 tip) on the
#: reference box that generated the committed BENCH_PR2.json.  ``cycles``
#: is machine-independent and must stay bit-identical; ``seconds`` is the
#: denominator of the reported speedup.
#:
#: em3d/hardware was re-pinned 610559 -> 610560 when the auditor PR's
#: rewrite of the DBP re-chase pruning policy (RECHASE_TABLE_MAX /
#: slack-based cutoff in prefetch/engines.py) moved the full-size run by
#: one cycle without refreshing this table; verified identical at that
#: commit and on current main, with and without profiling attached.
SEED_REFERENCE = {
    "health/hardware": {"seconds": 3.180, "cycles": 563314, "instructions": 314064},
    "em3d/hardware": {"seconds": 2.595, "cycles": 610560, "instructions": 174192},
    "treeadd/none": {"seconds": 1.419, "cycles": 298553, "instructions": 213955},
}

SINGLE_RUNS = (
    ("health", "hardware"),
    ("em3d", "hardware"),
    ("treeadd", "none"),
)

SWEEP_BENCHMARKS = ("treeadd", "em3d", "health")
REPS = 3
SPEEDUP_TARGET = 1.3


def _time_single(
    name: str,
    engine: str,
    cfg,
    params: dict | None = None,
    sim_engine: str | None = None,
) -> dict:
    program = get_workload(name, **(params or {})).build("baseline").program
    best = float("inf")
    result = None
    for __ in range(REPS):
        t0 = time.perf_counter()
        result = simulate(program, cfg, engine=engine, sim_engine=sim_engine)
        best = min(best, time.perf_counter() - t0)
    return {
        "seconds": round(best, 3),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "sim_insts_per_sec": round(result.instructions / best),
    }


def _time_sweep(cfg, params, **kwargs) -> tuple[float, list]:
    t0 = time.perf_counter()
    rows = figure5(cfg, benchmarks=SWEEP_BENCHMARKS, params=params, **kwargs)
    return time.perf_counter() - t0, rows


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--assert-speedup", action="store_true",
                    help=f"fail unless single-run speedup >= {SPEEDUP_TARGET}x "
                         "and jobs-4 sweep beats serial")
    ap.add_argument("--quick", action="store_true",
                    help="test-size sweep only (skips the single-run and "
                         "seed-parity sections; for smoke-testing the script)")
    ap.add_argument("-o", "--output", default="BENCH_PR2.json")
    args = ap.parse_args(argv)

    report: dict = {"schema": "repro.bench_pr2/1",
                    "sim_engine": default_sim_engine()}

    if args.quick:
        cfg = small_config()
        params = {n: small_params(n) for n in SWEEP_BENCHMARKS}

        # Test-size throughput, table vs the block-compiled fast path.
        # Absolute insts/s is box-dependent (generous bench-diff
        # tolerance required); ``fused_speedup`` is a same-box,
        # same-run ratio and therefore a portable lower-bound gate.
        report["quick_single_runs"] = {}
        for name, engine in SINGLE_RUNS:
            key = f"{name}/{engine}"
            p = small_params(name)
            table = _time_single(name, engine, cfg, p, sim_engine="table")
            fused = _time_single(name, engine, cfg, p, sim_engine="compiled")
            assert fused["cycles"] == table["cycles"], (
                f"{key}: compiled engine simulated {fused['cycles']} cycles, "
                f"table engine {table['cycles']} — the fast path diverged"
            )
            row = dict(fused)
            row["fused_speedup"] = round(
                table["seconds"] / max(fused["seconds"], 1e-9), 2
            )
            report["quick_single_runs"][key] = row
            print(f"{key} (quick): {fused['seconds']}s compiled "
                  f"({row['sim_insts_per_sec']:,} sim insts/s, "
                  f"{row['fused_speedup']}x vs table)")
    else:
        cfg = bench_config()
        params = None

        report["single_runs"] = {}
        for name, engine in SINGLE_RUNS:
            key = f"{name}/{engine}"
            measured = _time_single(name, engine, cfg)
            seed = SEED_REFERENCE[key]
            assert measured["cycles"] == seed["cycles"], (
                f"{key}: simulated {measured['cycles']} cycles, seed "
                f"simulated {seed['cycles']} — the timing model changed"
            )
            measured["seed_seconds"] = seed["seconds"]
            measured["speedup_vs_seed"] = round(seed["seconds"] / measured["seconds"], 2)
            report["single_runs"][key] = measured
            print(f"{key}: {measured['seconds']}s "
                  f"({measured['sim_insts_per_sec']:,} sim insts/s, "
                  f"{measured['speedup_vs_seed']}x vs seed)")

    # Sweep: serial, parallel, then cold/warm against a fresh cache.
    t_serial, rows_serial = _time_sweep(cfg, params)
    t_par, rows_par = _time_sweep(cfg, params, jobs=4)
    assert rows_serial == rows_par, "serial and --jobs 4 rows diverged"

    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = ResultCache(tmp)
        t_cold, rows_cold = _time_sweep(cfg, params, cache=cache)
        cold_stats = cache.stats()
        t_warm, rows_warm = _time_sweep(cfg, params, cache=cache)
        warm_stats = {k: v - cold_stats[k] for k, v in cache.stats().items()}
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    assert rows_cold == rows_warm == rows_serial, "cached rows diverged"
    assert warm_stats["misses"] == 0, (
        f"warm re-run missed the cache: {warm_stats}"
    )
    assert warm_stats["hits"] == cold_stats["misses"], (
        f"warm re-run did not serve every cell from cache: {warm_stats}"
    )

    report["sweep"] = {
        "benchmarks": list(SWEEP_BENCHMARKS),
        "cpu_count": os.cpu_count(),
        # The cgroup/affinity-aware count --jobs 0 would pick: the honest
        # denominator for judging jobs4_scaling on a throttled CI box.
        "detected_cpus": detect_cpus(),
        "cells": cold_stats["misses"],
        "serial_seconds": round(t_serial, 3),
        "jobs4_seconds": round(t_par, 3),
        "jobs4_scaling": round(t_serial / t_par, 2),
        # Scaling depends on free host cores, not on the code under
        # test; audit.bench classifies it "info" accordingly.
        "cpu_limited": True,
        "cold_cache_seconds": round(t_cold, 3),
        "warm_cache_seconds": round(t_warm, 3),
        "warm_speedup": round(t_cold / t_warm, 1),
        "warm_cache_stats": warm_stats,
    }
    print(f"sweep ({cold_stats['misses']} cells): serial {t_serial:.2f}s, "
          f"--jobs 4 {t_par:.2f}s ({t_serial / t_par:.2f}x), "
          f"warm cache {t_warm:.2f}s ({t_cold / t_warm:.0f}x vs cold)")

    if args.assert_speedup:
        assert not args.quick, "--assert-speedup needs the full run"
        for key, m in report["single_runs"].items():
            assert m["speedup_vs_seed"] >= SPEEDUP_TARGET, (
                f"{key}: {m['speedup_vs_seed']}x < {SPEEDUP_TARGET}x target"
            )
        # Scaling needs real cores: on a 1-CPU box --jobs 4 is pure
        # process overhead (parity above still proved correctness).
        # detect_cpus() respects cgroup quotas / CPU affinity, so a
        # 16-core host throttled to one core is judged as one core.
        if detect_cpus() >= 2:
            assert report["sweep"]["jobs4_scaling"] > 1.0, (
                "parallel sweep no faster than serial"
            )
        else:
            print("single-CPU machine: skipping the sweep-scaling assertion")

    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
