"""Extensions from the paper's "future directions" (Section 6).

X3 — adaptive jump intervals: "a better mechanism adapting the interval
on a case by case basis".  We compare fixed-interval hardware JPP against
the per-PC adaptive table at 70- and 280-cycle memory: at the long
latency a fixed interval of 8 is too short, and the adaptive table should
recover (most of) the gap to a hand-tuned longer interval.

X4 — generalization to "other classes of data structures with serialized
access idioms, like sparse matrices": the `spmv` workload (linked rows of
linked elements with x[col] gathers) run under the full scheme matrix.
"""

from dataclasses import replace

from conftest import run_once

from repro import bench_config
from repro.harness import BenchmarkRunner, format_table


def test_adaptive_interval(benchmark):
    def run():
        rows = []
        for latency in (70, 280):
            cfg = bench_config().with_memory_latency(latency)
            adaptive_cfg = replace(
                cfg, prefetch=replace(cfg.prefetch, adaptive_interval=True)
            )
            runner = BenchmarkRunner("health", cfg)
            base = runner.run("base")
            fixed = runner.run("hardware")
            adaptive = BenchmarkRunner("health", adaptive_cfg).run("hardware")
            rows.append({
                "latency": latency,
                "fixed interval 8": round(fixed.normalized(base.total), 3),
                "adaptive": round(adaptive.normalized(base.total), 3),
            })
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, "X3 — adaptive jump interval (health, hardware JPP)"))
    for row in rows:
        # the adaptive table must be competitive with the fixed default...
        assert row["adaptive"] <= row["fixed interval 8"] + 0.05, row
    # ...and it must still beat the baseline at the long latency
    assert rows[-1]["adaptive"] < 1.0


def test_spmv_generalization(benchmark):
    def run():
        runner = BenchmarkRunner("spmv", bench_config())
        matrix = runner.run_matrix()
        base = matrix["base"]
        return [
            {
                "scheme": scheme,
                "normalized": round(run_.normalized(base.total), 3),
                "mem_reduction%": round(
                    100 * run_.memory_reduction(base.memory), 1
                ),
            }
            for scheme, run_ in matrix.items()
        ]

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, "X4 — spmv (sparse-matrix generalization)"))
    by = {r["scheme"]: r["normalized"] for r in rows}
    # jump-pointer prefetching transfers to the sparse-matrix idiom:
    # every JPP scheme wins, hardware (many traversals) the most, and all
    # beat plain DBP
    for scheme in ("software", "cooperative", "hardware"):
        assert by[scheme] < 0.85, scheme
        assert by[scheme] < by["dbp"], scheme
    assert by["hardware"] == min(by[s] for s in ("software", "cooperative", "hardware"))
