"""Figure 5 — comparing implementations (software / cooperative / hardware
JPP and dependence-based prefetching) on all ten Olden programs.

Expected shapes (paper Section 4.2):
* the memory-bound programs (em3d, health, mst, perimeter, treeadd) see
  large gains from JPP, and JPP beats plain DBP on the serialized ones;
* power and voronoi: software prefetching's compute overhead produces a
  net slowdown; hardware JPP at worst does nothing;
* tsp (volatile list): software JPP is pure overhead;
* hardware JPP needs repeat traversals: it trails software/cooperative on
  the single-pass programs (perimeter, mst — where its jump-pointers are
  installed too late to be used) and does well on health/em3d/treeadd;
* averaged over the memory-bound set, every JPP implementation cuts a
  large share of memory stall time, more than DBP alone.
"""

from conftest import run_once

from repro import bench_config
from repro.harness import figure5, figure5_summary, format_table


def test_figure5(benchmark):
    rows = run_once(benchmark, figure5, bench_config())
    print()
    print(format_table(rows, "Figure 5 — normalized execution time"))
    summary = figure5_summary(rows)
    print()
    print(format_table(summary, "Averages over the memory-bound set"))

    def get(bench, scheme, field="normalized"):
        return next(
            r[field] for r in rows
            if r["benchmark"] == bench and r["scheme"] == scheme
        )

    # Memory-bound set: software and cooperative JPP clearly win
    for name in ("em3d", "health", "mst", "perimeter", "treeadd"):
        assert get(name, "software") < 0.97, name
    # JPP (best implementation) beats DBP on the serialized programs
    for name in ("health", "treeadd", "perimeter", "mst"):
        best_jpp = min(get(name, s) for s in ("software", "cooperative", "hardware"))
        assert best_jpp <= get(name, "dbp") + 0.02, name

    # Compute-bound programs: software prefetching does not help (and can
    # hurt); hardware JPP never degrades them
    for name in ("power", "voronoi", "tsp"):
        assert get(name, "software") >= 0.99, name
        assert get(name, "hardware") <= 1.02, name

    # Hardware JPP needs repeat traversals: single-pass perimeter gains
    # less from it than from creation-time software jump-pointers
    assert get("perimeter", "hardware") > get("perimeter", "software")

    # Headline averages: each implementation cuts a sizable share of the
    # memory-bound programs' stall time, DBP the least of the four
    by_scheme = {s["scheme"]: s for s in summary}
    for scheme in ("software", "cooperative", "hardware"):
        assert by_scheme[scheme]["avg mem stall cut%"] > 20
        assert by_scheme[scheme]["avg speedup%"] > 10
    assert by_scheme["dbp"]["avg mem stall cut%"] <= min(
        by_scheme[s]["avg mem stall cut%"] for s in ("software", "cooperative")
    )
