"""Telemetry-overhead smoke check (run directly, also wired into CI).

Simulates the ``health`` benchmark under the hardware scheme and compares
cycles-simulated-per-second across three modes:

* **off**     — ``telemetry=None``: the no-op fast path every normal run
  takes.  Each hook site must reduce to a single ``is None`` check.
* **metrics** — a :class:`repro.obs.Telemetry` with the registry and
  outcome tracker active (what ``python -m repro stats`` uses).
* **trace**   — metrics plus the structured event trace.
* **profile** — a :class:`repro.obs.Profiler` charging every commit to a
  CPI-stack bucket (what ``python -m repro profile`` uses).

Asserted invariants:

1. All modes simulate the identical cycle count — observability must
   never perturb timing.  The profiler in particular is a pure
   observer: its CPI-stack buckets must also sum to that cycle count.
2. The metrics path costs < ``MAX_METRICS_OVERHEAD`` over the no-op path
   (a tripwire against accidentally hoisting telemetry work onto the
   default path: if the gap collapses it means the "disabled" path is
   doing telemetry work; if it explodes the instruments got too fat).
3. The profiler costs < ``MAX_PROFILE_OVERHEAD`` when attached — it
   rides the commit loop, so its per-instruction work must stay a few
   dict updates.

Wall-clock-vs-seed (<5%, and <2% for the profiling-off path of this
PR's commit-loop changes) cannot be measured inside one checkout; it is
tracked at PR time by timing ``python -m repro run health`` against the
previous revision (see EXPERIMENTS.md, "Observability").
"""

from __future__ import annotations

import sys
import time

sys.path.insert(0, "src")

from repro import Telemetry, bench_config, get_workload, simulate  # noqa: E402
from repro.obs import EventTrace, Profiler  # noqa: E402

MAX_METRICS_OVERHEAD = 0.50  # fractional slowdown allowed for metrics mode
MAX_PROFILE_OVERHEAD = 0.75  # fractional slowdown allowed for profile mode
REPS = 3
PARAMS = {"levels": 4, "branching": 3, "npat": 10, "iterations": 12}


def _best_time(program, telemetry_factory, profile_factory=lambda: None):
    best = float("inf")
    cycles = None
    last_profiler = None
    for __ in range(REPS):
        profiler = profile_factory()
        t0 = time.perf_counter()
        res = simulate(program, bench_config(), engine="hardware",
                       telemetry=telemetry_factory(), profile=profiler)
        best = min(best, time.perf_counter() - t0)
        assert cycles is None or cycles == res.cycles, "nondeterministic run"
        cycles = res.cycles
        last_profiler = profiler
    return best, cycles, last_profiler


def main() -> int:
    program = get_workload("health", **PARAMS).build("baseline").program

    t_off, c_off, __ = _best_time(program, lambda: None)
    t_met, c_met, __ = _best_time(program, Telemetry)
    t_trc, c_trc, __ = _best_time(program, lambda: Telemetry(trace=EventTrace()))
    t_prf, c_prf, profiler = _best_time(program, lambda: None, Profiler)

    assert c_off == c_met == c_trc == c_prf, (
        f"observability changed simulated cycles: off={c_off} "
        f"metrics={c_met} trace={c_trc} profile={c_prf}"
    )
    assert sum(profiler.buckets.values()) == c_prf, (
        f"CPI stack lost cycles: {sum(profiler.buckets.values())} != {c_prf}"
    )
    overhead = t_met / t_off - 1.0
    prof_overhead = t_prf / t_off - 1.0
    print(f"health/hardware: {c_off} cycles")
    print(f"  telemetry off    : {t_off:.3f}s  ({c_off / t_off:,.0f} cycles/s)")
    print(f"  metrics          : {t_met:.3f}s  (+{overhead:.1%})")
    print(f"  metrics + trace  : {t_trc:.3f}s  (+{t_trc / t_off - 1.0:.1%})")
    print(f"  profiler         : {t_prf:.3f}s  (+{prof_overhead:.1%})")
    assert overhead < MAX_METRICS_OVERHEAD, (
        f"metrics-mode overhead {overhead:.1%} exceeds "
        f"{MAX_METRICS_OVERHEAD:.0%} — check the no-op fast path"
    )
    assert prof_overhead < MAX_PROFILE_OVERHEAD, (
        f"profiler overhead {prof_overhead:.1%} exceeds "
        f"{MAX_PROFILE_OVERHEAD:.0%} — the charge path got too fat"
    )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
